//! Writer for the `.bench` netlist format.

use crate::{GateKind, Netlist};
use std::fmt::Write as _;

/// Serializes a netlist to `.bench` text.
///
/// The output is accepted by [`crate::parse_bench`]; `write_bench` followed by
/// `parse_bench` round-trips the netlist up to gate-id renumbering (names,
/// connectivity, outputs and kinds are preserved).
pub fn write_bench(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", nl.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} key inputs, {} outputs, {} gates",
        nl.num_inputs(),
        nl.num_key_inputs(),
        nl.num_outputs(),
        nl.num_logic_gates()
    );
    for id in nl.inputs() {
        let _ = writeln!(out, "INPUT({})", nl.gate(id).name);
    }
    for id in nl.key_inputs() {
        let _ = writeln!(out, "INPUT({})", nl.gate(id).name);
    }
    for &id in nl.outputs() {
        let _ = writeln!(out, "OUTPUT({})", nl.gate(id).name);
    }
    for (_, gate) in nl.iter() {
        match gate.kind {
            GateKind::Input | GateKind::KeyInput => continue,
            GateKind::Const0 => {
                let _ = writeln!(out, "{} = CONST0()", gate.name);
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "{} = CONST1()", gate.name);
            }
            kind => {
                let args: Vec<&str> = gate
                    .fanin
                    .iter()
                    .map(|f| nl.gate(*f).name.as_str())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    gate.name,
                    kind.bench_keyword().expect("logic gate has a keyword"),
                    args.join(", ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_bench, GateKind, Netlist};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("sample");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k = nl.add_key_input("keyinput0").unwrap();
        let x = nl.add_gate("x", GateKind::Nand, vec![a, b]).unwrap();
        let m = nl.add_gate("m", GateKind::Mux, vec![k, x, a]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![m]).unwrap();
        nl.mark_output(y);
        nl
    }

    #[test]
    fn roundtrip_preserves_structure_and_function() {
        let nl = sample();
        let text = write_bench(&nl);
        let back = parse_bench("sample", &text).unwrap();
        assert_eq!(back.num_inputs(), nl.num_inputs());
        assert_eq!(back.num_key_inputs(), nl.num_key_inputs());
        assert_eq!(back.num_outputs(), nl.num_outputs());
        assert_eq!(back.num_logic_gates(), nl.num_logic_gates());
        for pattern in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            assert_eq!(nl.evaluate(&vals).unwrap(), back.evaluate(&vals).unwrap());
        }
    }

    #[test]
    fn output_contains_expected_lines() {
        let text = write_bench(&sample());
        assert!(text.contains("INPUT(a)"));
        assert!(text.contains("INPUT(keyinput0)"));
        assert!(text.contains("OUTPUT(y)"));
        assert!(text.contains("x = NAND(a, b)"));
        assert!(text.contains("m = MUX(keyinput0, x, a)"));
    }

    #[test]
    fn constants_serialized() {
        let mut nl = Netlist::new("c");
        let c0 = nl.add_gate("zero", GateKind::Const0, vec![]).unwrap();
        let c1 = nl.add_gate("one", GateKind::Const1, vec![]).unwrap();
        let y = nl.add_gate("y", GateKind::Or, vec![c0, c1]).unwrap();
        nl.mark_output(y);
        let text = write_bench(&nl);
        assert!(text.contains("zero = CONST0()"));
        assert!(text.contains("one = CONST1()"));
        let back = parse_bench("c", &text).unwrap();
        assert_eq!(back.evaluate(&[]).unwrap(), vec![true]);
    }
}
