//! Graph views of a netlist and enclosing-subgraph extraction.
//!
//! Link-prediction attacks (MuxLink-style) treat the netlist as an undirected
//! graph whose nodes are gates and whose edges are driver→sink connections.
//! This module provides the adjacency structures and the *enclosing subgraph*
//! extraction (the h-hop neighbourhood around a candidate link) those attacks
//! operate on, together with Double-Radius Node Labelling (DRNL) as used by
//! SEAL-style link predictors.

use crate::{GateId, Netlist};
use std::collections::{HashMap, VecDeque};

/// Undirected adjacency view of a netlist.
#[derive(Debug, Clone)]
pub struct UndirectedGraph {
    adj: Vec<Vec<GateId>>,
}

impl UndirectedGraph {
    /// Builds the undirected graph of a netlist (one node per gate, one edge
    /// per driver→sink connection; duplicate edges are collapsed).
    pub fn from_netlist(nl: &Netlist) -> Self {
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Builds the graph while ignoring a set of edges (given as `(driver,
    /// sink)` pairs). The link-prediction attack removes the candidate link
    /// itself before extracting its enclosing subgraph.
    pub fn from_netlist_without_edges(nl: &Netlist, excluded: &[(GateId, GateId)]) -> Self {
        let is_excluded = |a: GateId, b: GateId| {
            excluded
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
        };
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                if is_excluded(f, id) {
                    continue;
                }
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, id: GateId) -> &[GateId] {
        &self.adj[id.index()]
    }

    /// Node degree.
    pub fn degree(&self, id: GateId) -> usize {
        self.adj[id.index()].len()
    }

    /// Breadth-first distances from `source` up to `max_hops` (inclusive).
    /// Nodes further away are absent from the map.
    pub fn bfs_distances(&self, source: GateId, max_hops: usize) -> HashMap<GateId, usize> {
        let mut dist = HashMap::new();
        dist.insert(source, 0usize);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == max_hops {
                continue;
            }
            for &v in self.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Returns a copy of the graph with the undirected edge `(a, b)` removed
    /// (if present). Link-prediction training uses this to hide a known link
    /// before extracting its enclosing subgraph.
    pub fn without_edge(&self, a: GateId, b: GateId) -> UndirectedGraph {
        let mut adj = self.adj.clone();
        adj[a.index()].retain(|&n| n != b);
        adj[b.index()].retain(|&n| n != a);
        UndirectedGraph { adj }
    }

    /// Builds the graph while skipping every edge incident to a node for which
    /// `hidden(node)` returns `true`. Attacks use this to remove key inputs
    /// and key gates from the structural view.
    pub fn from_netlist_filtered<F: Fn(GateId) -> bool>(nl: &Netlist, hidden: F) -> Self {
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            if hidden(id) {
                continue;
            }
            for &f in &gate.fanin {
                if hidden(f) {
                    continue;
                }
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Number of common neighbours of two nodes (a classic link-prediction
    /// heuristic, used by baseline attacks).
    pub fn common_neighbors(&self, a: GateId, b: GateId) -> usize {
        self.neighbors(a)
            .iter()
            .filter(|x| self.neighbors(b).contains(x))
            .count()
    }

    /// Jaccard similarity of the neighbourhoods of two nodes.
    pub fn jaccard(&self, a: GateId, b: GateId) -> f64 {
        let common = self.common_neighbors(a, b);
        let union = self.degree(a) + self.degree(b) - common;
        if union == 0 {
            0.0
        } else {
            common as f64 / union as f64
        }
    }
}

/// Compressed-sparse-row undirected view of a netlist.
///
/// Stores the same graph as [`UndirectedGraph`] in two flat arrays instead of
/// one `Vec` per node, which matters once circuits reach ISCAS scale: a
/// 7500-gate netlist is ~30k adjacency entries in two contiguous allocations
/// rather than 7500 heap vectors. Per-node adjacency is sorted, so
/// neighbourhood intersection ([`CsrGraph::common_neighbors`]) is a linear
/// merge instead of a quadratic scan.
///
/// The link-prediction attacks additionally need to extract the enclosing
/// subgraph of a link *with that link hidden* (positive training examples).
/// [`UndirectedGraph::without_edge`] does this by cloning the whole adjacency
/// per sample; `CsrGraph` instead threads an optional skipped edge through
/// BFS and subgraph extraction, so large-circuit attacks never copy the
/// graph at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s neighbours in `adj`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted neighbour lists.
    adj: Vec<GateId>,
}

impl CsrGraph {
    /// Builds the CSR graph of a netlist (one node per gate, one undirected
    /// edge per driver→sink connection; duplicate edges are collapsed).
    pub fn from_netlist(nl: &Netlist) -> Self {
        Self::from_netlist_filtered(nl, |_| false)
    }

    /// Builds the CSR graph while skipping every edge incident to a node for
    /// which `hidden(node)` returns `true` (the attacker's view of a locked
    /// netlist, with key inputs and key gates removed).
    pub fn from_netlist_filtered<F: Fn(GateId) -> bool>(nl: &Netlist, hidden: F) -> Self {
        // Collect both directions of every edge, then sort + dedup: one pass
        // of transient memory, and the per-node slices come out sorted.
        let mut pairs: Vec<(GateId, GateId)> = Vec::new();
        for (id, gate) in nl.iter() {
            if hidden(id) {
                continue;
            }
            for &f in &gate.fanin {
                if hidden(f) || f == id {
                    continue;
                }
                pairs.push((id, f));
                pairs.push((f, id));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; nl.len() + 1];
        for &(a, _) in &pairs {
            offsets[a.index() + 1] += 1;
        }
        for i in 0..nl.len() {
            offsets[i + 1] += offsets[i];
        }
        let adj: Vec<GateId> = pairs.into_iter().map(|(_, b)| b).collect();
        CsrGraph { offsets, adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Neighbours of a node, in ascending id order.
    pub fn neighbors(&self, id: GateId) -> &[GateId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Node degree.
    pub fn degree(&self, id: GateId) -> usize {
        self.neighbors(id).len()
    }

    /// Returns `true` if the undirected edge `(a, b)` exists.
    pub fn has_edge(&self, a: GateId, b: GateId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Number of common neighbours of two nodes (linear merge over the two
    /// sorted adjacency slices).
    pub fn common_neighbors(&self, a: GateId, b: GateId) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let (na, nb) = (self.neighbors(a), self.neighbors(b));
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Jaccard similarity of the neighbourhoods of two nodes.
    pub fn jaccard(&self, a: GateId, b: GateId) -> f64 {
        let common = self.common_neighbors(a, b);
        let union = self.degree(a) + self.degree(b) - common;
        if union == 0 {
            0.0
        } else {
            common as f64 / union as f64
        }
    }

    /// Breadth-first distances from `source` up to `max_hops` (inclusive),
    /// optionally treating the undirected edge `skip` as absent. Nodes
    /// further away are absent from the map, which stays sized by the
    /// neighbourhood rather than the netlist.
    pub fn bfs_distances_skip(
        &self,
        source: GateId,
        max_hops: usize,
        skip: Option<(GateId, GateId)>,
    ) -> HashMap<GateId, usize> {
        let mut dist = HashMap::new();
        dist.insert(source, 0usize);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == max_hops {
                continue;
            }
            for &v in self.neighbors(u) {
                if let Some((x, y)) = skip {
                    if (u == x && v == y) || (u == y && v == x) {
                        continue;
                    }
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Breadth-first distances from `source` up to `max_hops` (inclusive).
    pub fn bfs_distances(&self, source: GateId, max_hops: usize) -> HashMap<GateId, usize> {
        self.bfs_distances_skip(source, max_hops, None)
    }

    /// Extracts the `hops`-hop enclosing subgraph of the candidate link
    /// `(u, v)`. With `drop_link` the edge `(u, v)` is treated as absent —
    /// in BFS *and* in the extracted edge list — without copying the graph;
    /// link-prediction training uses this to hide a positive link before
    /// extracting its neighbourhood.
    pub fn enclosing_subgraph(
        &self,
        u: GateId,
        v: GateId,
        hops: usize,
        drop_link: bool,
    ) -> EnclosingSubgraph {
        let skip = if drop_link { Some((u, v)) } else { None };
        let du = self.bfs_distances_skip(u, hops, skip);
        let dv = self.bfs_distances_skip(v, hops, skip);
        let mut nodes: Vec<GateId> = du.keys().chain(dv.keys()).copied().collect();
        nodes.push(u);
        nodes.push(v);
        nodes.sort_unstable();
        nodes.dedup();
        let index_of: HashMap<GateId, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let dist_u: Vec<usize> = nodes
            .iter()
            .map(|n| du.get(n).copied().unwrap_or(usize::MAX))
            .collect();
        let dist_v: Vec<usize> = nodes
            .iter()
            .map(|n| dv.get(n).copied().unwrap_or(usize::MAX))
            .collect();
        let drnl: Vec<usize> = nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                if n == u || n == v {
                    1
                } else {
                    drnl_label(dist_u[i], dist_v[i])
                }
            })
            .collect();
        let mut edges = Vec::new();
        for (i, &n) in nodes.iter().enumerate() {
            for &m in self.neighbors(n) {
                if drop_link && ((n == u && m == v) || (n == v && m == u)) {
                    continue;
                }
                if let Some(&j) = index_of.get(&m) {
                    if i < j {
                        edges.push((i, j));
                    }
                }
            }
        }
        EnclosingSubgraph {
            u,
            v,
            nodes,
            dist_u,
            dist_v,
            drnl,
            edges,
        }
    }
}

/// The enclosing subgraph of a candidate link `(u, v)`: all nodes within
/// `hops` of either endpoint, with per-node structural labels.
#[derive(Debug, Clone)]
pub struct EnclosingSubgraph {
    /// First endpoint of the candidate link.
    pub u: GateId,
    /// Second endpoint of the candidate link.
    pub v: GateId,
    /// Nodes of the subgraph (always contains `u` and `v`).
    pub nodes: Vec<GateId>,
    /// Hop distance from `u` for every node (usize::MAX if unreachable within
    /// the hop budget).
    pub dist_u: Vec<usize>,
    /// Hop distance from `v` for every node.
    pub dist_v: Vec<usize>,
    /// DRNL label of every node.
    pub drnl: Vec<usize>,
    /// Edges of the subgraph as index pairs into `nodes`.
    pub edges: Vec<(usize, usize)>,
}

/// Extracts the `hops`-hop enclosing subgraph of the candidate link `(u, v)`
/// on `graph`. The candidate link itself must already be absent from `graph`
/// (use [`UndirectedGraph::from_netlist_without_edges`]).
pub fn enclosing_subgraph(
    graph: &UndirectedGraph,
    u: GateId,
    v: GateId,
    hops: usize,
) -> EnclosingSubgraph {
    let du = graph.bfs_distances(u, hops);
    let dv = graph.bfs_distances(v, hops);
    let mut nodes: Vec<GateId> = du.keys().chain(dv.keys()).copied().collect();
    nodes.sort();
    nodes.dedup();
    // Always include endpoints even if isolated.
    if !nodes.contains(&u) {
        nodes.push(u);
    }
    if !nodes.contains(&v) {
        nodes.push(v);
        nodes.sort();
        nodes.dedup();
    }
    let index_of: HashMap<GateId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let dist_u: Vec<usize> = nodes
        .iter()
        .map(|n| du.get(n).copied().unwrap_or(usize::MAX))
        .collect();
    let dist_v: Vec<usize> = nodes
        .iter()
        .map(|n| dv.get(n).copied().unwrap_or(usize::MAX))
        .collect();
    let drnl: Vec<usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            if n == u || n == v {
                1
            } else {
                drnl_label(dist_u[i], dist_v[i])
            }
        })
        .collect();
    let mut edges = Vec::new();
    for (i, &n) in nodes.iter().enumerate() {
        for &m in graph.neighbors(n) {
            if let Some(&j) = index_of.get(&m) {
                if i < j {
                    edges.push((i, j));
                }
            }
        }
    }
    EnclosingSubgraph {
        u,
        v,
        nodes,
        dist_u,
        dist_v,
        drnl,
        edges,
    }
}

/// Double-Radius Node Labelling (Zhang & Chen, SEAL). Labels encode the pair
/// of distances `(d_u, d_v)` of a node to the two link endpoints; the two
/// endpoints themselves get label 1. Unreachable nodes get label 0.
pub fn drnl_label(d_u: usize, d_v: usize) -> usize {
    if d_u == usize::MAX || d_v == usize::MAX {
        return 0;
    }
    let d = d_u + d_v;
    let half = d / 2;
    // f(du, dv) = 1 + min(du, dv) + (d/2) * ((d/2) + (d % 2) - 1)
    1 + d_u.min(d_v) + half * ((half + d % 2).saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn diamond() -> (Netlist, GateId, GateId, GateId, GateId) {
        // a -> x, a -> y, x -> z, y -> z
        let mut nl = Netlist::new("diamond");
        let a = nl.add_input("a");
        let x = nl.add_gate("x", GateKind::Not, vec![a]).unwrap();
        let y = nl.add_gate("y", GateKind::Buf, vec![a]).unwrap();
        let z = nl.add_gate("z", GateKind::And, vec![x, y]).unwrap();
        nl.mark_output(z);
        (nl, a, x, y, z)
    }

    #[test]
    fn undirected_adjacency() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        assert_eq!(g.len(), 4);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(z), 2);
        assert!(g.neighbors(x).contains(&a));
        assert!(g.neighbors(x).contains(&z));
        assert_eq!(g.common_neighbors(x, y), 2); // a and z
        assert!(g.jaccard(x, y) > 0.9);
    }

    #[test]
    fn excluded_edges_are_absent() {
        let (nl, a, x, _y, _z) = diamond();
        let g = UndirectedGraph::from_netlist_without_edges(&nl, &[(a, x)]);
        assert!(!g.neighbors(a).contains(&x));
        assert!(!g.neighbors(x).contains(&a));
    }

    #[test]
    fn without_edge_removes_both_directions() {
        let (nl, a, x, _y, _z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        let g2 = g.without_edge(a, x);
        assert!(!g2.neighbors(a).contains(&x));
        assert!(!g2.neighbors(x).contains(&a));
        // Original untouched.
        assert!(g.neighbors(a).contains(&x));
    }

    #[test]
    fn filtered_graph_hides_nodes() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist_filtered(&nl, |id| id == x);
        assert!(g.neighbors(a).contains(&y));
        assert!(!g.neighbors(a).contains(&x));
        assert!(g.neighbors(x).is_empty());
        assert!(!g.neighbors(z).contains(&x));
    }

    #[test]
    fn bfs_distances_respect_hop_limit() {
        let (nl, a, _x, _y, z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        let d = g.bfs_distances(a, 1);
        assert_eq!(d[&a], 0);
        assert!(!d.contains_key(&z)); // z is 2 hops away
        let d2 = g.bfs_distances(a, 2);
        assert_eq!(d2[&z], 2);
    }

    #[test]
    fn enclosing_subgraph_contains_endpoints_and_labels() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist_without_edges(&nl, &[(x, z)]);
        let sg = enclosing_subgraph(&g, x, z, 2);
        assert!(sg.nodes.contains(&x));
        assert!(sg.nodes.contains(&z));
        assert!(sg.nodes.contains(&a));
        assert!(sg.nodes.contains(&y));
        // Endpoints labelled 1.
        let xi = sg.nodes.iter().position(|&n| n == x).unwrap();
        let zi = sg.nodes.iter().position(|&n| n == z).unwrap();
        assert_eq!(sg.drnl[xi], 1);
        assert_eq!(sg.drnl[zi], 1);
        // The excluded edge must not appear.
        assert!(!sg.edges.contains(&(xi.min(zi), xi.max(zi))));
    }

    #[test]
    fn csr_graph_matches_vec_of_vec_adjacency() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        let c = CsrGraph::from_netlist(&nl);
        assert_eq!(c.len(), g.len());
        assert_eq!(c.num_edges(), 4);
        for id in [a, x, y, z] {
            assert_eq!(c.degree(id), g.degree(id), "{id}");
            let mut expect = g.neighbors(id).to_vec();
            expect.sort_unstable();
            assert_eq!(c.neighbors(id), expect.as_slice(), "{id}");
        }
        assert_eq!(c.common_neighbors(x, y), g.common_neighbors(x, y));
        assert!((c.jaccard(x, y) - g.jaccard(x, y)).abs() < 1e-12);
        assert!(c.has_edge(a, x));
        assert!(!c.has_edge(a, z));
    }

    #[test]
    fn csr_filtered_hides_nodes() {
        let (nl, a, x, y, z) = diamond();
        let c = CsrGraph::from_netlist_filtered(&nl, |id| id == x);
        assert!(c.neighbors(a).contains(&y));
        assert!(!c.neighbors(a).contains(&x));
        assert!(c.neighbors(x).is_empty());
        assert!(!c.neighbors(z).contains(&x));
    }

    #[test]
    fn csr_bfs_skip_edge_reroutes_distances() {
        let (nl, a, x, _y, z) = diamond();
        let c = CsrGraph::from_netlist(&nl);
        let plain = c.bfs_distances(x, 4);
        assert_eq!(plain[&z], 1);
        // With the x–z edge hidden, z is only reachable via a → y.
        let skipped = c.bfs_distances_skip(x, 4, Some((z, x)));
        assert_eq!(skipped[&z], 3);
        assert_eq!(skipped[&a], 1);
    }

    #[test]
    fn csr_enclosing_subgraph_matches_cloning_extraction() {
        let (nl, _a, x, _y, z) = diamond();
        // Old path: clone the graph without the candidate link, extract.
        let cloned = UndirectedGraph::from_netlist_without_edges(&nl, &[(x, z)]);
        let old = enclosing_subgraph(&cloned, x, z, 2);
        // New path: no clone, drop_link threads the exclusion through.
        let c = CsrGraph::from_netlist(&nl);
        let new = c.enclosing_subgraph(x, z, 2, true);
        assert_eq!(new.nodes, old.nodes);
        assert_eq!(new.dist_u, old.dist_u);
        assert_eq!(new.dist_v, old.dist_v);
        assert_eq!(new.drnl, old.drnl);
        let mut old_edges = old.edges.clone();
        old_edges.sort_unstable();
        let mut new_edges = new.edges.clone();
        new_edges.sort_unstable();
        assert_eq!(new_edges, old_edges);
    }

    #[test]
    fn csr_enclosing_subgraph_keeps_link_without_drop() {
        let (nl, _a, x, _y, z) = diamond();
        let c = CsrGraph::from_netlist(&nl);
        let sg = c.enclosing_subgraph(x, z, 2, false);
        let xi = sg.nodes.iter().position(|&n| n == x).unwrap();
        let zi = sg.nodes.iter().position(|&n| n == z).unwrap();
        assert!(sg.edges.contains(&(xi.min(zi), xi.max(zi))));
    }

    #[test]
    fn drnl_label_basics() {
        assert_eq!(drnl_label(usize::MAX, 3), 0);
        // (1,1): d=2, half=1 -> 1 + 1 + 1*(1+0-1) = 2
        assert_eq!(drnl_label(1, 1), 2);
        // (1,2): d=3, half=1 -> 1 + 1 + 1*(1+1-1) = 3
        assert_eq!(drnl_label(1, 2), 3);
        // (2,2): d=4, half=2 -> 1 + 2 + 2*(2+0-1) = 5
        assert_eq!(drnl_label(2, 2), 5);
        // labels are positive and deterministic
        for du in 1..5 {
            for dv in 1..5 {
                assert!(drnl_label(du, dv) >= 1);
                assert_eq!(drnl_label(du, dv), drnl_label(dv, du));
            }
        }
    }
}
