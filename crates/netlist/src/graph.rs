//! Graph views of a netlist and enclosing-subgraph extraction.
//!
//! Link-prediction attacks (MuxLink-style) treat the netlist as an undirected
//! graph whose nodes are gates and whose edges are driver→sink connections.
//! This module provides the adjacency structures and the *enclosing subgraph*
//! extraction (the h-hop neighbourhood around a candidate link) those attacks
//! operate on, together with Double-Radius Node Labelling (DRNL) as used by
//! SEAL-style link predictors.

use crate::{GateId, Netlist};
use std::collections::{HashMap, VecDeque};

/// Undirected adjacency view of a netlist.
#[derive(Debug, Clone)]
pub struct UndirectedGraph {
    adj: Vec<Vec<GateId>>,
}

impl UndirectedGraph {
    /// Builds the undirected graph of a netlist (one node per gate, one edge
    /// per driver→sink connection; duplicate edges are collapsed).
    pub fn from_netlist(nl: &Netlist) -> Self {
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Builds the graph while ignoring a set of edges (given as `(driver,
    /// sink)` pairs). The link-prediction attack removes the candidate link
    /// itself before extracting its enclosing subgraph.
    pub fn from_netlist_without_edges(nl: &Netlist, excluded: &[(GateId, GateId)]) -> Self {
        let is_excluded = |a: GateId, b: GateId| {
            excluded
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
        };
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                if is_excluded(f, id) {
                    continue;
                }
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, id: GateId) -> &[GateId] {
        &self.adj[id.index()]
    }

    /// Node degree.
    pub fn degree(&self, id: GateId) -> usize {
        self.adj[id.index()].len()
    }

    /// Breadth-first distances from `source` up to `max_hops` (inclusive).
    /// Nodes further away are absent from the map.
    pub fn bfs_distances(&self, source: GateId, max_hops: usize) -> HashMap<GateId, usize> {
        let mut dist = HashMap::new();
        dist.insert(source, 0usize);
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == max_hops {
                continue;
            }
            for &v in self.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Returns a copy of the graph with the undirected edge `(a, b)` removed
    /// (if present). Link-prediction training uses this to hide a known link
    /// before extracting its enclosing subgraph.
    pub fn without_edge(&self, a: GateId, b: GateId) -> UndirectedGraph {
        let mut adj = self.adj.clone();
        adj[a.index()].retain(|&n| n != b);
        adj[b.index()].retain(|&n| n != a);
        UndirectedGraph { adj }
    }

    /// Builds the graph while skipping every edge incident to a node for which
    /// `hidden(node)` returns `true`. Attacks use this to remove key inputs
    /// and key gates from the structural view.
    pub fn from_netlist_filtered<F: Fn(GateId) -> bool>(nl: &Netlist, hidden: F) -> Self {
        let mut adj: Vec<Vec<GateId>> = vec![Vec::new(); nl.len()];
        for (id, gate) in nl.iter() {
            if hidden(id) {
                continue;
            }
            for &f in &gate.fanin {
                if hidden(f) {
                    continue;
                }
                if !adj[id.index()].contains(&f) {
                    adj[id.index()].push(f);
                }
                if !adj[f.index()].contains(&id) {
                    adj[f.index()].push(id);
                }
            }
        }
        UndirectedGraph { adj }
    }

    /// Number of common neighbours of two nodes (a classic link-prediction
    /// heuristic, used by baseline attacks).
    pub fn common_neighbors(&self, a: GateId, b: GateId) -> usize {
        self.neighbors(a)
            .iter()
            .filter(|x| self.neighbors(b).contains(x))
            .count()
    }

    /// Jaccard similarity of the neighbourhoods of two nodes.
    pub fn jaccard(&self, a: GateId, b: GateId) -> f64 {
        let common = self.common_neighbors(a, b);
        let union = self.degree(a) + self.degree(b) - common;
        if union == 0 {
            0.0
        } else {
            common as f64 / union as f64
        }
    }
}

/// The enclosing subgraph of a candidate link `(u, v)`: all nodes within
/// `hops` of either endpoint, with per-node structural labels.
#[derive(Debug, Clone)]
pub struct EnclosingSubgraph {
    /// First endpoint of the candidate link.
    pub u: GateId,
    /// Second endpoint of the candidate link.
    pub v: GateId,
    /// Nodes of the subgraph (always contains `u` and `v`).
    pub nodes: Vec<GateId>,
    /// Hop distance from `u` for every node (usize::MAX if unreachable within
    /// the hop budget).
    pub dist_u: Vec<usize>,
    /// Hop distance from `v` for every node.
    pub dist_v: Vec<usize>,
    /// DRNL label of every node.
    pub drnl: Vec<usize>,
    /// Edges of the subgraph as index pairs into `nodes`.
    pub edges: Vec<(usize, usize)>,
}

/// Extracts the `hops`-hop enclosing subgraph of the candidate link `(u, v)`
/// on `graph`. The candidate link itself must already be absent from `graph`
/// (use [`UndirectedGraph::from_netlist_without_edges`]).
pub fn enclosing_subgraph(
    graph: &UndirectedGraph,
    u: GateId,
    v: GateId,
    hops: usize,
) -> EnclosingSubgraph {
    let du = graph.bfs_distances(u, hops);
    let dv = graph.bfs_distances(v, hops);
    let mut nodes: Vec<GateId> = du.keys().chain(dv.keys()).copied().collect();
    nodes.sort();
    nodes.dedup();
    // Always include endpoints even if isolated.
    if !nodes.contains(&u) {
        nodes.push(u);
    }
    if !nodes.contains(&v) {
        nodes.push(v);
        nodes.sort();
        nodes.dedup();
    }
    let index_of: HashMap<GateId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let dist_u: Vec<usize> = nodes
        .iter()
        .map(|n| du.get(n).copied().unwrap_or(usize::MAX))
        .collect();
    let dist_v: Vec<usize> = nodes
        .iter()
        .map(|n| dv.get(n).copied().unwrap_or(usize::MAX))
        .collect();
    let drnl: Vec<usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            if n == u || n == v {
                1
            } else {
                drnl_label(dist_u[i], dist_v[i])
            }
        })
        .collect();
    let mut edges = Vec::new();
    for (i, &n) in nodes.iter().enumerate() {
        for &m in graph.neighbors(n) {
            if let Some(&j) = index_of.get(&m) {
                if i < j {
                    edges.push((i, j));
                }
            }
        }
    }
    EnclosingSubgraph {
        u,
        v,
        nodes,
        dist_u,
        dist_v,
        drnl,
        edges,
    }
}

/// Double-Radius Node Labelling (Zhang & Chen, SEAL). Labels encode the pair
/// of distances `(d_u, d_v)` of a node to the two link endpoints; the two
/// endpoints themselves get label 1. Unreachable nodes get label 0.
pub fn drnl_label(d_u: usize, d_v: usize) -> usize {
    if d_u == usize::MAX || d_v == usize::MAX {
        return 0;
    }
    let d = d_u + d_v;
    let half = d / 2;
    // f(du, dv) = 1 + min(du, dv) + (d/2) * ((d/2) + (d % 2) - 1)
    1 + d_u.min(d_v) + half * ((half + d % 2).saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn diamond() -> (Netlist, GateId, GateId, GateId, GateId) {
        // a -> x, a -> y, x -> z, y -> z
        let mut nl = Netlist::new("diamond");
        let a = nl.add_input("a");
        let x = nl.add_gate("x", GateKind::Not, vec![a]).unwrap();
        let y = nl.add_gate("y", GateKind::Buf, vec![a]).unwrap();
        let z = nl.add_gate("z", GateKind::And, vec![x, y]).unwrap();
        nl.mark_output(z);
        (nl, a, x, y, z)
    }

    #[test]
    fn undirected_adjacency() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        assert_eq!(g.len(), 4);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(z), 2);
        assert!(g.neighbors(x).contains(&a));
        assert!(g.neighbors(x).contains(&z));
        assert_eq!(g.common_neighbors(x, y), 2); // a and z
        assert!(g.jaccard(x, y) > 0.9);
    }

    #[test]
    fn excluded_edges_are_absent() {
        let (nl, a, x, _y, _z) = diamond();
        let g = UndirectedGraph::from_netlist_without_edges(&nl, &[(a, x)]);
        assert!(!g.neighbors(a).contains(&x));
        assert!(!g.neighbors(x).contains(&a));
    }

    #[test]
    fn without_edge_removes_both_directions() {
        let (nl, a, x, _y, _z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        let g2 = g.without_edge(a, x);
        assert!(!g2.neighbors(a).contains(&x));
        assert!(!g2.neighbors(x).contains(&a));
        // Original untouched.
        assert!(g.neighbors(a).contains(&x));
    }

    #[test]
    fn filtered_graph_hides_nodes() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist_filtered(&nl, |id| id == x);
        assert!(g.neighbors(a).contains(&y));
        assert!(!g.neighbors(a).contains(&x));
        assert!(g.neighbors(x).is_empty());
        assert!(!g.neighbors(z).contains(&x));
    }

    #[test]
    fn bfs_distances_respect_hop_limit() {
        let (nl, a, _x, _y, z) = diamond();
        let g = UndirectedGraph::from_netlist(&nl);
        let d = g.bfs_distances(a, 1);
        assert_eq!(d[&a], 0);
        assert!(!d.contains_key(&z)); // z is 2 hops away
        let d2 = g.bfs_distances(a, 2);
        assert_eq!(d2[&z], 2);
    }

    #[test]
    fn enclosing_subgraph_contains_endpoints_and_labels() {
        let (nl, a, x, y, z) = diamond();
        let g = UndirectedGraph::from_netlist_without_edges(&nl, &[(x, z)]);
        let sg = enclosing_subgraph(&g, x, z, 2);
        assert!(sg.nodes.contains(&x));
        assert!(sg.nodes.contains(&z));
        assert!(sg.nodes.contains(&a));
        assert!(sg.nodes.contains(&y));
        // Endpoints labelled 1.
        let xi = sg.nodes.iter().position(|&n| n == x).unwrap();
        let zi = sg.nodes.iter().position(|&n| n == z).unwrap();
        assert_eq!(sg.drnl[xi], 1);
        assert_eq!(sg.drnl[zi], 1);
        // The excluded edge must not appear.
        assert!(!sg.edges.contains(&(xi.min(zi), xi.max(zi))));
    }

    #[test]
    fn drnl_label_basics() {
        assert_eq!(drnl_label(usize::MAX, 3), 0);
        // (1,1): d=2, half=1 -> 1 + 1 + 1*(1+0-1) = 2
        assert_eq!(drnl_label(1, 1), 2);
        // (1,2): d=3, half=1 -> 1 + 1 + 1*(1+1-1) = 3
        assert_eq!(drnl_label(1, 2), 3);
        // (2,2): d=4, half=2 -> 1 + 2 + 2*(2+0-1) = 5
        assert_eq!(drnl_label(2, 2), 5);
        // labels are positive and deterministic
        for du in 1..5 {
            for dv in 1..5 {
                assert!(drnl_label(du, dv) >= 1);
                assert_eq!(drnl_label(du, dv), drnl_label(dv, du));
            }
        }
    }
}
