//! Topological ordering, logic levels, cones and reachability.

use crate::{GateId, GateKind, Netlist, NetlistError, Result};
use std::collections::VecDeque;

/// Computes a topological order of all gates (fan-ins before fan-outs).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the netlist has a cycle.
pub fn topological_order(nl: &Netlist) -> Result<Vec<GateId>> {
    let n = nl.len();
    let mut indeg = vec![0usize; n];
    for (_, gate) in nl.iter() {
        // count unique? fanin may repeat; count every edge.
        let _ = gate;
    }
    for (id, gate) in nl.iter() {
        indeg[id.index()] = gate.fanin.len();
    }
    let fanouts = nl.fanouts();
    let mut queue: VecDeque<GateId> = nl.ids().filter(|id| indeg[id.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &s in &fanouts[id.index()] {
            // each occurrence of `id` in s.fanin contributes one to indeg of s
            let cnt = nl.gate(s).fanin.iter().filter(|&&f| f == id).count();
            // fanouts list contains s once per edge already? No: fanouts pushes once per fanin occurrence.
            let _ = cnt;
            indeg[s.index()] -= 1;
            if indeg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() != n {
        // Find a gate still having nonzero indegree for the error message.
        let culprit = nl
            .ids()
            .find(|id| indeg[id.index()] > 0)
            .map(|id| nl.gate(id).name.clone())
            .unwrap_or_else(|| "<unknown>".to_string());
        return Err(NetlistError::CombinationalCycle(culprit));
    }
    Ok(order)
}

/// Computes the logic level (longest distance from any input/constant) of
/// every gate. Inputs, key inputs and constants are level 0.
pub fn logic_levels(nl: &Netlist) -> Result<Vec<usize>> {
    let order = topological_order(nl)?;
    let mut levels = vec![0usize; nl.len()];
    for id in order {
        let gate = nl.gate(id);
        if gate.fanin.is_empty() {
            levels[id.index()] = 0;
        } else {
            levels[id.index()] = gate
                .fanin
                .iter()
                .map(|f| levels[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
        }
    }
    Ok(levels)
}

/// The circuit depth: the maximum logic level over all primary outputs.
pub fn depth(nl: &Netlist) -> Result<usize> {
    let levels = logic_levels(nl)?;
    Ok(nl
        .outputs()
        .iter()
        .map(|o| levels[o.index()])
        .max()
        .unwrap_or(0))
}

/// Returns the transitive fan-in cone of `root` (including `root` itself).
pub fn fanin_cone(nl: &Netlist, root: GateId) -> Vec<GateId> {
    let mut visited = vec![false; nl.len()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            continue;
        }
        visited[id.index()] = true;
        cone.push(id);
        for &f in &nl.gate(id).fanin {
            if !visited[f.index()] {
                stack.push(f);
            }
        }
    }
    cone.sort();
    cone
}

/// Returns the transitive fan-out cone of `root` (including `root` itself).
pub fn fanout_cone(nl: &Netlist, root: GateId) -> Vec<GateId> {
    let fanouts = nl.fanouts();
    let mut visited = vec![false; nl.len()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            continue;
        }
        visited[id.index()] = true;
        cone.push(id);
        for &s in &fanouts[id.index()] {
            if !visited[s.index()] {
                stack.push(s);
            }
        }
    }
    cone.sort();
    cone
}

/// Returns `true` if `target` is reachable from `from` following driver→sink
/// edges (i.e. `target` is in the transitive fan-out of `from`).
///
/// Used by MUX-insertion to avoid creating combinational cycles.
pub fn is_reachable(nl: &Netlist, from: GateId, target: GateId) -> bool {
    if from == target {
        return true;
    }
    let fanouts = nl.fanouts();
    let mut visited = vec![false; nl.len()];
    let mut stack = vec![from];
    visited[from.index()] = true;
    while let Some(id) = stack.pop() {
        for &s in &fanouts[id.index()] {
            if s == target {
                return true;
            }
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push(s);
            }
        }
    }
    false
}

/// Gates sorted by logic level, returning `(id, level)` pairs in topological
/// order. Convenience used by simulation and feature extraction.
pub fn levelized(nl: &Netlist) -> Result<Vec<(GateId, usize)>> {
    let order = topological_order(nl)?;
    let levels = logic_levels(nl)?;
    Ok(order
        .into_iter()
        .map(|id| (id, levels[id.index()]))
        .collect())
}

/// Returns all gates whose kind is ordinary logic (not inputs/keys/constants).
pub fn logic_gates(nl: &Netlist) -> Vec<GateId> {
    nl.ids()
        .filter(|&id| {
            let k = nl.gate(id).kind;
            !k.is_input() && !k.is_constant()
        })
        .collect()
}

/// Returns the gates that drive at least one other gate or a primary output
/// ("live" gates); useful to pick locking locations with observable effect.
pub fn live_gates(nl: &Netlist) -> Vec<GateId> {
    let fanouts = nl.fanouts();
    nl.ids()
        .filter(|&id| !fanouts[id.index()].is_empty() || nl.outputs().contains(&id))
        .collect()
}

/// Computes, for every gate, whether its kind is [`GateKind::KeyInput`] or it
/// is in the transitive fan-out of a key input. Attacks use this to identify
/// "key-affected" logic.
pub fn key_affected(nl: &Netlist) -> Vec<bool> {
    let mut affected = vec![false; nl.len()];
    let fanouts = nl.fanouts();
    let mut stack: Vec<GateId> = nl
        .ids()
        .filter(|&id| nl.gate(id).kind == GateKind::KeyInput)
        .collect();
    for &k in &stack {
        affected[k.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &s in &fanouts[id.index()] {
            if !affected[s.index()] {
                affected[s.index()] = true;
                stack.push(s);
            }
        }
    }
    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("in");
        for i in 0..n {
            prev = nl
                .add_gate(format!("n{i}"), GateKind::Not, vec![prev])
                .unwrap();
        }
        nl.mark_output(prev);
        nl
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = chain(5);
        let order = topological_order(&nl).unwrap();
        assert_eq!(order.len(), nl.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; nl.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (id, gate) in nl.iter() {
            for &f in &gate.fanin {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn depth_of_chain() {
        let nl = chain(7);
        assert_eq!(depth(&nl).unwrap(), 7);
        let levels = logic_levels(&nl).unwrap();
        assert_eq!(levels[nl.find("in").unwrap().index()], 0);
        assert_eq!(levels[nl.find("n6").unwrap().index()], 7);
    }

    #[test]
    fn cones_and_reachability() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate("x", GateKind::And, vec![a, b]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![x]).unwrap();
        let z = nl.add_gate("z", GateKind::Or, vec![a, y]).unwrap();
        nl.mark_output(z);

        let cone = fanin_cone(&nl, z);
        assert_eq!(cone, vec![a, b, x, y, z]);
        let fout = fanout_cone(&nl, b);
        assert_eq!(fout, vec![b, x, y, z]);
        assert!(is_reachable(&nl, a, z));
        assert!(is_reachable(&nl, x, z));
        assert!(!is_reachable(&nl, z, a));
        assert!(is_reachable(&nl, a, a));
    }

    #[test]
    fn key_affected_marks_fanout_of_keys() {
        let mut nl = Netlist::new("k");
        let a = nl.add_input("a");
        let k = nl.add_key_input("k0").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, vec![a, k]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![a]).unwrap();
        nl.mark_output(x);
        nl.mark_output(y);
        let aff = key_affected(&nl);
        assert!(aff[k.index()]);
        assert!(aff[x.index()]);
        assert!(!aff[a.index()]);
        assert!(!aff[y.index()]);
    }

    #[test]
    fn logic_gates_excludes_inputs() {
        let nl = chain(3);
        assert_eq!(logic_gates(&nl).len(), 3);
        assert_eq!(live_gates(&nl).len(), 4); // input + 3 gates (last is output)
    }

    #[test]
    fn cycle_reported() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_gate("x", GateKind::Not, vec![a]).unwrap();
        let y = nl.add_gate("y", GateKind::Not, vec![x]).unwrap();
        // Introduce cycle x -> y -> x by rewiring x's fanin to y.
        nl.replace_fanin(x, a, y).unwrap();
        assert!(matches!(
            topological_order(&nl),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }
}
