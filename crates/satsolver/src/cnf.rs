//! CNF formula container with DIMACS import/export.

use crate::{Lit, Solver, Var};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A CNF formula: a number of variables and a list of clauses.
///
/// `CnfFormula` is a plain data structure; load it into a [`Solver`] with
/// [`CnfFormula::load_into`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Adds a clause (no simplification is performed here).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            self.reserve_vars(l.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Loads the formula into a solver (creating variables as needed).
    /// Returns `false` if the solver became unsatisfiable while loading.
    pub fn load_into(&self, solver: &mut Solver) -> bool {
        solver.reserve_vars(self.num_vars);
        let mut ok = true;
        for clause in &self.clauses {
            ok &= solver.add_clause(clause);
        }
        ok
    }

    /// Serializes the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                let _ = write!(out, "{} ", lit.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses a DIMACS CNF document.
    ///
    /// Returns `None` on malformed input (missing header, stray tokens,
    /// zero-terminated clause spanning the header, ...).
    pub fn from_dimacs(text: &str) -> Option<Self> {
        let mut formula = CnfFormula::new();
        let mut declared_vars = 0usize;
        let mut seen_header = false;
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                let mut parts = line.split_whitespace();
                parts.next()?; // p
                if parts.next()? != "cnf" {
                    return None;
                }
                declared_vars = parts.next()?.parse().ok()?;
                let _num_clauses: usize = parts.next()?.parse().ok()?;
                seen_header = true;
                continue;
            }
            if !seen_header {
                return None;
            }
            for tok in line.split_whitespace() {
                let value: i64 = tok.parse().ok()?;
                if value == 0 {
                    formula.add_clause(std::mem::take(&mut current));
                } else {
                    current.push(Lit::from_dimacs(value)?);
                }
            }
        }
        if !current.is_empty() {
            formula.add_clause(current);
        }
        formula.reserve_vars(declared_vars);
        Some(formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn build_and_solve() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        f.add_clause([Lit::pos(a), Lit::pos(b)]);
        f.add_clause([Lit::neg(a)]);
        let mut s = Solver::new();
        assert!(f.load_into(&mut s));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        let c = f.new_var();
        f.add_clause([Lit::pos(a), Lit::neg(b)]);
        f.add_clause([Lit::pos(c)]);
        let text = f.to_dimacs();
        assert!(text.starts_with("p cnf 3 2"));
        let back = CnfFormula::from_dimacs(&text).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn dimacs_with_comments_and_multiline_clauses() {
        let text = "c comment\np cnf 3 2\n1 -2\n0\n3 0\n";
        let f = CnfFormula::from_dimacs(text).unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_vars(), 3);
    }

    #[test]
    fn malformed_dimacs_rejected() {
        assert!(CnfFormula::from_dimacs("1 2 0").is_none()); // no header
        assert!(CnfFormula::from_dimacs("p cnf x y\n").is_none());
        assert!(CnfFormula::from_dimacs("p sat 3 2\n1 0\n").is_none());
    }
}
