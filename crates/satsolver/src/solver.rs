//! The CDCL solver.

use crate::{Lit, Var};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it back with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The search was cut off by the active [`SolveBudget`] before reaching a
    /// verdict. The solver state stays consistent: clauses learned so far are
    /// kept and further `solve` calls (with a fresh or no budget) may still
    /// answer Sat/Unsat.
    Unknown,
    /// The search was suspended at a conflict granule set with
    /// [`Solver::set_pause_granule`]. Unlike [`SolveResult::Unknown`], the
    /// solver keeps its complete search position (trail, decision levels,
    /// watch state, per-call budget baselines); the next assumption-free
    /// `solve` call continues the identical search as if it had never
    /// stopped. No clauses may be added while paused.
    Paused,
}

/// A per-call resource budget for [`Solver::solve`].
///
/// Deadline-based services must bound a *single* solver call, not just the
/// gaps between calls: a miter solve on an ISCAS-scale circuit can run for
/// minutes, so checking wall clock only between calls lets one call blow past
/// any deadline unboundedly. The budget is consulted *inside* the CDCL loop
/// (at every conflict and periodically between decisions), so `solve` returns
/// [`SolveResult::Unknown`] within a small, bounded overshoot of the limit.
///
/// The wall-clock deadline depends on the machine; the conflict and
/// propagation budgets are deterministic (two runs on any machines cut off at
/// the same search point), which is what a reproducible-results service wants
/// for induced timeouts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Absolute wall-clock deadline; `None` = unbounded.
    pub deadline: Option<Instant>,
    /// Maximum conflicts *per solve call*; `None` = unbounded.
    pub max_conflicts: Option<u64>,
    /// Maximum propagations *per solve call*; `None` = unbounded.
    pub max_propagations: Option<u64>,
}

impl SolveBudget {
    /// No limits (the default).
    pub fn unbounded() -> Self {
        SolveBudget::default()
    }

    /// A wall-clock deadline `ms` milliseconds from now.
    pub fn with_timeout_ms(ms: u64) -> Self {
        SolveBudget {
            deadline: Instant::now().checked_add(std::time::Duration::from_millis(ms)),
            ..SolveBudget::default()
        }
    }

    /// An absolute wall-clock deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        SolveBudget {
            deadline: Some(deadline),
            ..SolveBudget::default()
        }
    }

    /// Caps propagations per call (deterministic, machine-independent).
    pub fn with_max_propagations(mut self, max: u64) -> Self {
        self.max_propagations = Some(max);
        self
    }

    /// Caps conflicts per call (deterministic, machine-independent).
    pub fn with_max_conflicts(mut self, max: u64) -> Self {
        self.max_conflicts = Some(max);
        self
    }

    /// `true` if no limit is set (the hot loop skips all checks then).
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.max_conflicts.is_none() && self.max_propagations.is_none()
    }
}

/// Counters describing the work a solver has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of decision literals picked.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of clauses learned.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// Distinguishes learnt clauses in snapshots (and future clause-database
    /// reduction policies).
    pub(crate) learnt: bool,
}

const UNDEF: i8 = 0;

/// A CDCL SAT solver.
///
/// See the [crate documentation](crate) for an example. The solver is
/// incremental: clauses may be added between [`Solver::solve`] calls and
/// [`Solver::solve_with_assumptions`] temporarily fixes literals without
/// permanently constraining the formula.
#[derive(Debug, Clone)]
pub struct Solver {
    pub(crate) clauses: Vec<Clause>,
    /// watches[l.code()] = indices of clauses currently watching literal `l`.
    pub(crate) watches: Vec<Vec<usize>>,
    /// assigns[v] = 0 (unassigned), 1 (true), -1 (false).
    pub(crate) assigns: Vec<i8>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<Option<usize>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) polarity: Vec<bool>,
    pub(crate) model: Vec<i8>,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    pub(crate) budget: SolveBudget,
    /// `true` while a solve is suspended mid-search (see
    /// [`Solver::set_pause_granule`]). The fields below live in the struct
    /// rather than the call frame so a paused call keeps its exact per-call
    /// bookkeeping on resume — which is what makes a resumed search replay
    /// the identical path.
    pub(crate) paused: bool,
    pub(crate) base_conflicts: u64,
    pub(crate) base_propagations: u64,
    pub(crate) conflicts_since_restart: u64,
    pub(crate) restart_limit: u64,
    pub(crate) pause_mark: u64,
    pub(crate) pause_granule: Option<u64>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            polarity: Vec::new(),
            model: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            budget: SolveBudget::default(),
            paused: false,
            base_conflicts: 0,
            base_propagations: 0,
            conflicts_since_restart: 0,
            restart_limit: 100,
            pause_mark: 0,
            pause_granule: None,
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Work counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Sets the budget applied to every subsequent `solve` call. Conflict and
    /// propagation limits are counted per call (against a snapshot of the
    /// stats taken when the call starts); the deadline is absolute. Pass
    /// [`SolveBudget::unbounded`] to clear.
    pub fn set_budget(&mut self, budget: SolveBudget) {
        self.budget = budget;
    }

    /// The budget currently applied to `solve` calls.
    pub fn budget(&self) -> SolveBudget {
        self.budget
    }

    /// Requests that `solve` return [`SolveResult::Paused`] every `granule`
    /// conflicts (values below 1 are clamped to 1) instead of running to a
    /// verdict in one call, keeping the full search position so the next
    /// assumption-free `solve` continues exactly where it stopped. This is
    /// the mid-solve checkpoint boundary: between a pause and the resume the
    /// solver can be snapshotted with [`Solver::snapshot`]. Pausing never
    /// changes the search path — a paused-and-resumed run performs the
    /// identical decisions, propagations and restarts as an uninterrupted
    /// one. Pass `None` (the default) to disable pausing.
    pub fn set_pause_granule(&mut self, granule: Option<u64>) {
        self.pause_granule = granule.map(|g| g.max(1));
    }

    /// The pause granule currently in effect.
    pub fn pause_granule(&self) -> Option<u64> {
        self.pause_granule
    }

    /// `true` while a solve is suspended mid-search (the last `solve` call
    /// returned [`SolveResult::Paused`] and has not been resumed yet).
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.model.push(UNDEF);
        v
    }

    /// Ensures at least `n` variables exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assigns[l.var().index()];
        if a == UNDEF {
            UNDEF
        } else if l.is_neg() {
            -a
        } else {
            a
        }
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause at top level), `true` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0 (it always
    /// is between `solve` calls) or if a literal references an unknown
    /// variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            !self.paused,
            "clauses cannot be added while a solve is paused"
        );
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable {l}");
        }
        // Simplify: sort, dedup, drop false literals, detect tautology and
        // satisfied clauses.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            if sorted.contains(&!l) && l.is_pos() {
                // Tautology: always satisfied.
                return true;
            }
            match self.lit_value(l) {
                1 => return true, // already satisfied at level 0
                -1 => continue,   // falsified at level 0: drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    return false;
                }
                true
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len();
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(Clause { lits, learnt });
        if learnt {
            self.stats.learned_clauses += 1;
        }
        idx
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<usize>) {
        debug_assert_eq!(self.lit_value(l), UNDEF);
        let v = l.var().index();
        self.assigns[v] = if l.is_neg() { -1 } else { 1 };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let watch_code = false_lit.code();
            let ws = std::mem::take(&mut self.watches[watch_code]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                // Make sure the falsified literal is at position 1.
                {
                    let c = &mut self.clauses[ci];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == 1 {
                    keep.push(ci);
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                {
                    let len = self.clauses[ci].lits.len();
                    for k in 2..len {
                        let lk = self.clauses[ci].lits[k];
                        if self.lit_value(lk) != -1 {
                            self.clauses[ci].lits.swap(1, k);
                            let new_watch = self.clauses[ci].lits[1];
                            self.watches[new_watch.code()].push(ci);
                            found = true;
                            break;
                        }
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                keep.push(ci);
                if self.lit_value(first) == -1 {
                    // Conflict: keep the remaining watchers and stop.
                    keep.extend_from_slice(&ws[i..]);
                    conflict = Some(ci);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(ci));
                }
            }
            // Restore the (possibly appended-to) watch list.
            let appended = std::mem::take(&mut self.watches[watch_code]);
            keep.extend(appended);
            self.watches[watch_code] = keep;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index();
            self.polarity[v] = self.assigns[v] == 1;
            self.assigns[v] = UNDEF;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // slot 0 reserved for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let current_level = self.decision_level() as u32;

        loop {
            let start = usize::from(p.is_some());
            // Collect literals from the current reason/conflict clause.
            let clause_lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in clause_lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: the most recently assigned
            // literal that we've seen.
            loop {
                index -= 1;
                if seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            let pv = pl.var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pl);
                break;
            }
            confl = self.reason[pv.index()].expect("non-decision literal has a reason");
            p = Some(pl);
        }
        learnt[0] = !p.expect("at least one literal at the conflict level");

        // Compute backtrack level: the second-highest level in the clause.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, backtrack_level)
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v] == UNDEF {
                match best {
                    Some((_, act)) if act >= self.activity[v] => {}
                    _ => best = Some((v, self.activity[v])),
                }
            }
        }
        best.map(|(v, _)| Var(v as u32))
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// Returns [`SolveResult::Unsat`] if no model exists that also satisfies
    /// every assumption. The solver state (clauses, learned clauses) persists
    /// across calls; the assumptions do not.
    ///
    /// With a pause granule set (see [`Solver::set_pause_granule`]) the call
    /// may also return [`SolveResult::Paused`]; the next call then resumes
    /// the suspended search.
    ///
    /// # Panics
    ///
    /// Panics when resuming a paused search with a non-empty assumption list
    /// (a paused search can only continue the assumption-free solve that was
    /// suspended).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            self.paused = false;
            return SolveResult::Unsat;
        }
        if self.paused {
            // Resuming: keep the trail, decision levels and per-call
            // counters untouched so the continued search replays the exact
            // path the uninterrupted call would have taken.
            assert!(
                assumptions.is_empty(),
                "a paused solve can only be resumed without assumptions"
            );
            self.paused = false;
        } else {
            self.conflicts_since_restart = 0;
            self.restart_limit = 100;
            // Per-call budget bookkeeping: conflict/propagation limits count
            // work done in *this* call against a snapshot of the stats. The
            // baselines live in the struct so a paused call keeps counting
            // against the same snapshot when it resumes.
            self.base_conflicts = self.stats.conflicts;
            self.base_propagations = self.stats.propagations;
            self.pause_mark = self.stats.conflicts;
        }

        // Each budget check is a couple of compares (plus one vDSO clock
        // read for the deadline), negligible next to the propagate() call
        // that follows it, so all three run on every iteration and the
        // overshoot past a limit is at most one propagation pass.
        let bounded = !self.budget.is_unbounded();

        let result = 'outer: loop {
            if bounded {
                if let Some(max) = self.budget.max_conflicts {
                    if self.stats.conflicts - self.base_conflicts >= max {
                        break 'outer SolveResult::Unknown;
                    }
                }
                if let Some(max) = self.budget.max_propagations {
                    if self.stats.propagations - self.base_propagations >= max {
                        break 'outer SolveResult::Unknown;
                    }
                }
                if let Some(deadline) = self.budget.deadline {
                    if Instant::now() >= deadline {
                        break 'outer SolveResult::Unknown;
                    }
                }
            }
            if let Some(granule) = self.pause_granule {
                if self.stats.conflicts - self.pause_mark >= granule {
                    self.pause_mark = self.stats.conflicts;
                    self.paused = true;
                    // Deliberately NOT cancel_until(0): the suspended trail
                    // and decision levels are the search position the next
                    // call continues from.
                    return SolveResult::Paused;
                }
            }
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break 'outer SolveResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(conflict);
                // Never backtrack past the assumption prefix blindly: the
                // assumption literals are re-decided by the decision loop, so
                // plain backjumping is sound.
                self.cancel_until(back_level);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.unchecked_enqueue(asserting, None);
                } else {
                    let idx = self.attach_clause(learnt, true);
                    self.unchecked_enqueue(asserting, Some(idx));
                }
                self.decay_activities();
            } else {
                // No conflict.
                if self.conflicts_since_restart >= self.restart_limit {
                    self.conflicts_since_restart = 0;
                    self.restart_limit = (self.restart_limit as f64 * 1.5) as u64;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
                // Re-establish assumptions as the first decision levels.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    if p.var().index() >= self.num_vars() {
                        // Unknown assumption variable: treat as free, create it.
                        self.reserve_vars(p.var().index() + 1);
                    }
                    match self.lit_value(p) {
                        1 => {
                            // Already satisfied: open a dummy level to keep the
                            // level <-> assumption-index correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        -1 => {
                            break 'outer SolveResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.stats.decisions += 1;
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // All variables assigned: model found.
                        self.model = self.assigns.clone();
                        break 'outer SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        };
        // Leave the solver at level 0 so that clauses can be added afterwards.
        self.cancel_until(0);
        result
    }

    /// Model value of `v` after a successful [`Solver::solve`] call.
    ///
    /// Returns `None` if the variable was never assigned in the model (cannot
    /// happen for variables that existed before the call) or if the last call
    /// was not satisfiable.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()).copied().unwrap_or(UNDEF) {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    /// Returns `true` if the solver is known to be unsatisfiable regardless of
    /// assumptions (an empty clause was derived at level 0).
    pub fn is_ok(&self) -> bool {
        self.ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0])]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));

        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        // (a) & (!a | b) & (!b | c) => a,b,c all true
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor1 = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor1(&mut s, v[0], v[1]);
        xor1(&mut s, v[1], v[2]);
        xor1(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i][j]), Lit::neg(p[k][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_3_sat() {
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 3];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1]), Lit::pos(row[2])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..3 {
            for i in 0..3 {
                for k in (i + 1)..3 {
                    s.add_clause(&[Lit::neg(p[i][j]), Lit::neg(p[k][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Each pigeon must be in at least one hole in the model.
        for row in &p {
            assert!(row.iter().any(|&v| s.value(v) == Some(true)));
        }
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        // Assuming !a forces b.
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(v[0])]),
            SolveResult::Sat
        );
        assert_eq!(s.value(v[0]), Some(false));
        assert_eq!(s.value(v[1]), Some(true));
        // Conflicting assumptions yield Unsat but don't poison the solver.
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(v[0]), Lit::neg(v[1])]),
            SolveResult::Unsat
        );
        assert!(s.is_ok());
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Progressively forbid models.
        s.add_clause(&[Lit::neg(v[0])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        s.add_clause(&[Lit::neg(v[2])]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautology_and_duplicate_literals_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert!(s.add_clause(&[Lit::pos(v[1]), Lit::pos(v[1])]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let v = lits(&mut s, 20);
        // Random-ish unsatisfiable core plus satisfiable fluff.
        for i in 0..19 {
            s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
            s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().propagations > 0);
    }

    /// Encodes the (unsatisfiable) `pigeons`-into-`holes` pigeonhole problem,
    /// exponentially hard for CDCL once `pigeons` is around 9-10.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        for i in 0..pigeons {
            for k in (i + 1)..pigeons {
                for (&a, &b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
    }

    #[test]
    fn propagation_budget_cuts_off_hard_instance() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 10, 9);
        s.set_budget(SolveBudget::unbounded().with_max_propagations(20_000));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // The cutoff overshoots by at most one propagation pass.
        assert!(s.stats().propagations >= 20_000);
        // Unknown must not poison the solver.
        assert!(s.is_ok());
    }

    #[test]
    fn conflict_budget_cuts_off_hard_instance() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 10, 9);
        s.set_budget(SolveBudget::unbounded().with_max_conflicts(50));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.stats().conflicts, 50);
        assert!(s.is_ok());
    }

    #[test]
    fn deadline_budget_bounds_single_solve_call() {
        use std::time::{Duration, Instant};
        let mut s = Solver::new();
        // Hard enough that an unbounded solve takes far longer than the
        // deadline on any machine this runs on.
        pigeonhole(&mut s, 11, 10);
        s.set_budget(SolveBudget::with_timeout_ms(30));
        let start = Instant::now();
        let result = s.solve();
        let elapsed = start.elapsed();
        assert_eq!(result, SolveResult::Unknown);
        // Generous multiple: the assertion is "bounded", not "tight" — debug
        // builds on loaded CI runners are slow, but nowhere near the minutes
        // an unbounded solve would take.
        assert!(
            elapsed < Duration::from_millis(30 * 100),
            "deadline overshoot: {elapsed:?}"
        );
    }

    #[test]
    fn solver_stays_usable_after_unknown() {
        // Small enough to finish unbounded in milliseconds, hard enough to
        // exceed the 10-conflict budget first.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.set_budget(SolveBudget::unbounded().with_max_conflicts(10));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // Clauses may still be added after an Unknown (level 0 restored)...
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::pos(v)]));
        // ...and clearing the budget lets the solver finish the instance.
        s.set_budget(SolveBudget::unbounded());
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.value(v), None);
    }

    #[test]
    fn budget_counts_per_call_not_cumulative() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 3, 2);
        // Generous per-call budget: a small instance solves within it even
        // after earlier calls consumed stats.
        s.set_budget(SolveBudget::unbounded().with_max_propagations(1_000_000));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unbounded_budget_changes_nothing() {
        let mut bounded = Solver::new();
        let mut plain = Solver::new();
        pigeonhole(&mut bounded, 6, 5);
        pigeonhole(&mut plain, 6, 5);
        bounded.set_budget(SolveBudget::unbounded());
        assert_eq!(bounded.solve(), SolveResult::Unsat);
        assert_eq!(plain.solve(), SolveResult::Unsat);
        assert_eq!(bounded.stats(), plain.stats());
    }

    /// Brute-force model check used by the random CNF test below.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
        for assignment in 0..(1u32 << num_vars) {
            let value = |l: Lit| {
                let bit = (assignment >> l.var().index()) & 1 == 1;
                if l.is_neg() {
                    !bit
                } else {
                    bit
                }
            };
            if clauses.iter().all(|c| c.iter().any(|&l| value(l))) {
                return true;
            }
        }
        false
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for round in 0..60 {
            let num_vars = 6;
            let num_clauses = 3 + (round % 20);
            let clauses: Vec<Vec<Lit>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = Var(rng.gen_range(0..num_vars) as u32);
                            Lit::new(v, rng.gen_bool(0.5))
                        })
                        .collect()
                })
                .collect();
            let mut s = Solver::new();
            s.reserve_vars(num_vars);
            let mut early_unsat = false;
            for c in &clauses {
                if !s.add_clause(c) {
                    early_unsat = true;
                }
            }
            let expected = brute_force_sat(num_vars, &clauses);
            let got = if early_unsat {
                false
            } else {
                s.solve() == SolveResult::Sat
            };
            assert_eq!(got, expected, "round {round}: clauses {clauses:?}");
            if got {
                // Verify the model actually satisfies every clause.
                for c in &clauses {
                    assert!(c.iter().any(|&l| {
                        let val = s.value(l.var()).unwrap();
                        if l.is_neg() {
                            !val
                        } else {
                            val
                        }
                    }));
                }
            }
        }
    }
}
