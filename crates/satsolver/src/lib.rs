//! A from-scratch CDCL SAT solver and netlist-to-CNF encoder.
//!
//! This crate is the substrate for the oracle-guided SAT attack on logic
//! locking (crate `autolock-attacks`). It provides:
//!
//! * [`Solver`] — a conflict-driven clause-learning (CDCL) SAT solver with
//!   two-watched-literal propagation, VSIDS-style activity decision heuristic,
//!   first-UIP clause learning, non-chronological backtracking, geometric
//!   restarts and incremental solving under assumptions;
//! * [`CnfFormula`] — a clause container with DIMACS import/export;
//! * [`encode`] — Tseitin encoding of an [`autolock_netlist::Netlist`] into
//!   CNF, with a stable gate→variable mapping so the attack can constrain and
//!   read back key bits;
//! * [`SolverSnapshot`] — a serializable capture of the complete search
//!   state, paired with [`Solver::set_pause_granule`] so a long solve can be
//!   suspended at conflict boundaries, checkpointed to disk, and resumed
//!   bit-identically after a kill.
//!
//! ```
//! use autolock_satsolver::{Lit, Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a OR b) AND (!a OR b) AND (a OR !b)  =>  a = b = true
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::pos(a), Lit::neg(b)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(a), Some(true));
//! assert_eq!(s.value(b), Some(true));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cnf;
pub mod encode;
mod snapshot;
mod solver;
mod types;

pub use cnf::CnfFormula;
pub use encode::CircuitEncoder;
pub use snapshot::SolverSnapshot;
pub use solver::{SolveBudget, SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};
