//! Tseitin encoding of gate-level netlists into CNF.
//!
//! Every gate output is given one SAT variable. The encoder adds the standard
//! Tseitin clauses for each gate so that any satisfying assignment of the CNF
//! corresponds exactly to a consistent evaluation of the circuit. The SAT
//! attack builds miters out of two copies of a locked netlist using this
//! encoder.

use crate::{Lit, Solver, Var};
use autolock_netlist::{GateId, GateKind, Netlist};
use std::collections::HashMap;

/// Maps the gates of one netlist instance to solver variables.
///
/// Multiple `CircuitEncoder`s over the same [`Solver`] create independent
/// copies of the circuit (used to build miters); the caller can tie selected
/// variables together (e.g. primary inputs) with equality clauses via
/// [`CircuitEncoder::assert_equal`].
#[derive(Debug, Clone)]
pub struct CircuitEncoder {
    vars: Vec<Var>,
    by_name: HashMap<String, Var>,
}

impl CircuitEncoder {
    /// Encodes `netlist` into `solver`, creating one fresh variable per gate
    /// and adding the Tseitin clauses of every logic gate.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation (callers encode validated
    /// netlists).
    pub fn encode(solver: &mut Solver, netlist: &Netlist) -> Self {
        netlist.validate().expect("encode requires a valid netlist");
        let mut vars = Vec::with_capacity(netlist.len());
        let mut by_name = HashMap::with_capacity(netlist.len());
        for (_, gate) in netlist.iter() {
            let v = solver.new_var();
            vars.push(v);
            by_name.insert(gate.name.clone(), v);
        }
        let enc = CircuitEncoder { vars, by_name };
        for (id, gate) in netlist.iter() {
            enc.encode_gate(solver, netlist, id, gate.kind);
        }
        enc
    }

    /// Rebuilds an encoder from the per-gate variables a previous
    /// [`CircuitEncoder::encode`] of the *same* netlist produced (e.g.
    /// recovered from a [`crate::SolverSnapshot`]-based checkpoint). Adds no
    /// clauses — the restored solver already carries them. Auxiliary
    /// variables the original encoding allocated (XOR-chain internals) live
    /// only in the solver and need no mapping here.
    ///
    /// # Errors
    ///
    /// Returns an error when `vars` does not have one entry per gate of
    /// `netlist` — the checkpoint and the netlist do not belong together.
    pub fn from_vars(netlist: &Netlist, vars: Vec<Var>) -> Result<Self, String> {
        if vars.len() != netlist.len() {
            return Err(format!(
                "encoder/netlist mismatch: {} variables for {} gates",
                vars.len(),
                netlist.len()
            ));
        }
        let mut by_name = HashMap::with_capacity(vars.len());
        for ((_, gate), &v) in netlist.iter().zip(&vars) {
            by_name.insert(gate.name.clone(), v);
        }
        Ok(CircuitEncoder { vars, by_name })
    }

    /// The solver variable of a gate.
    pub fn var(&self, gate: GateId) -> Var {
        self.vars[gate.index()]
    }

    /// The solver variable of a signal by name, if present.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.by_name.get(name).copied()
    }

    /// All variables, indexed by gate id.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Adds clauses forcing the variables of `gate_a` (in this encoding) and
    /// `gate_b` (in `other`) to be equal.
    pub fn assert_equal(
        &self,
        solver: &mut Solver,
        gate_a: GateId,
        other: &CircuitEncoder,
        gate_b: GateId,
    ) {
        let a = Lit::pos(self.var(gate_a));
        let b = Lit::pos(other.var(gate_b));
        solver.add_clause(&[!a, b]);
        solver.add_clause(&[a, !b]);
    }

    /// Adds a unit clause fixing a gate's variable to a constant value.
    pub fn assert_value(&self, solver: &mut Solver, gate: GateId, value: bool) {
        solver.add_clause(&[Lit::new(self.var(gate), value)]);
    }

    /// Creates a literal for "the value of `gate` is `value`".
    pub fn lit(&self, gate: GateId, value: bool) -> Lit {
        Lit::new(self.var(gate), value)
    }

    fn encode_gate(&self, solver: &mut Solver, netlist: &Netlist, id: GateId, kind: GateKind) {
        let out = Lit::pos(self.var(id));
        let fanin: Vec<Lit> = netlist
            .gate(id)
            .fanin
            .iter()
            .map(|&f| Lit::pos(self.var(f)))
            .collect();
        match kind {
            GateKind::Input | GateKind::KeyInput => {
                // Free variables: no clauses.
            }
            GateKind::Const0 => {
                solver.add_clause(&[!out]);
            }
            GateKind::Const1 => {
                solver.add_clause(&[out]);
            }
            GateKind::Buf => {
                solver.add_clause(&[!fanin[0], out]);
                solver.add_clause(&[fanin[0], !out]);
            }
            GateKind::Not => {
                solver.add_clause(&[fanin[0], out]);
                solver.add_clause(&[!fanin[0], !out]);
            }
            GateKind::And => Self::encode_and(solver, out, &fanin, false),
            GateKind::Nand => Self::encode_and(solver, out, &fanin, true),
            GateKind::Or => Self::encode_or(solver, out, &fanin, false),
            GateKind::Nor => Self::encode_or(solver, out, &fanin, true),
            GateKind::Xor => Self::encode_xor(solver, out, &fanin, false),
            GateKind::Xnor => Self::encode_xor(solver, out, &fanin, true),
            GateKind::Mux => {
                let s = fanin[0];
                let a = fanin[1]; // selected when s = 0
                let b = fanin[2]; // selected when s = 1
                                  // out = (!s & a) | (s & b)
                solver.add_clause(&[s, !a, out]);
                solver.add_clause(&[s, a, !out]);
                solver.add_clause(&[!s, !b, out]);
                solver.add_clause(&[!s, b, !out]);
                // Redundant but propagation-friendly: if a == b, out == a.
                solver.add_clause(&[!a, !b, out]);
                solver.add_clause(&[a, b, !out]);
            }
        }
    }

    fn encode_and(solver: &mut Solver, out: Lit, fanin: &[Lit], invert: bool) {
        let y = if invert { !out } else { out };
        // y -> every input true: (!y | in_i)
        for &i in fanin {
            solver.add_clause(&[!y, i]);
        }
        // all inputs true -> y: (!in_1 | ... | !in_n | y)
        let mut clause: Vec<Lit> = fanin.iter().map(|&i| !i).collect();
        clause.push(y);
        solver.add_clause(&clause);
    }

    fn encode_or(solver: &mut Solver, out: Lit, fanin: &[Lit], invert: bool) {
        let y = if invert { !out } else { out };
        // in_i -> y
        for &i in fanin {
            solver.add_clause(&[!i, y]);
        }
        // y -> some input: (in_1 | ... | in_n | !y)
        let mut clause: Vec<Lit> = fanin.to_vec();
        clause.push(!y);
        solver.add_clause(&clause);
    }

    fn encode_xor(solver: &mut Solver, out: Lit, fanin: &[Lit], invert: bool) {
        // Chain pairwise: t_0 = in_0, t_i = t_{i-1} xor in_i, out = t_last (xnor inverts).
        let mut acc = fanin[0];
        for &next in &fanin[1..fanin.len().saturating_sub(1)] {
            let t = Lit::pos(solver.new_var());
            Self::encode_xor2(solver, t, acc, next);
            acc = t;
        }
        let last = *fanin.last().expect("xor has at least 2 inputs");
        let target = if invert { !out } else { out };
        if fanin.len() == 1 {
            // Degenerate, not produced by validated netlists; treat as buffer.
            solver.add_clause(&[!acc, target]);
            solver.add_clause(&[acc, !target]);
        } else {
            Self::encode_xor2(solver, target, acc, last);
        }
    }

    /// Clauses for `y = a xor b`.
    fn encode_xor2(solver: &mut Solver, y: Lit, a: Lit, b: Lit) {
        solver.add_clause(&[!a, !b, !y]);
        solver.add_clause(&[a, b, !y]);
        solver.add_clause(&[!a, b, y]);
        solver.add_clause(&[a, !b, y]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;
    use autolock_netlist::{GateKind, Netlist};

    /// Checks that the CNF encoding of `nl` agrees with direct simulation for
    /// every primary-input/key-input assignment.
    fn check_encoding_exhaustive(nl: &Netlist) {
        let inputs = nl.inputs();
        let keys = nl.key_inputs();
        let total_bits = inputs.len() + keys.len();
        assert!(total_bits <= 10, "test helper is exhaustive");
        for assignment in 0..(1u32 << total_bits) {
            let bits: Vec<bool> = (0..total_bits)
                .map(|i| (assignment >> i) & 1 == 1)
                .collect();
            let expected = nl.evaluate(&bits).unwrap();

            let mut solver = Solver::new();
            let enc = CircuitEncoder::encode(&mut solver, nl);
            for (i, &id) in inputs.iter().chain(keys.iter()).enumerate() {
                enc.assert_value(&mut solver, id, bits[i]);
            }
            assert_eq!(
                solver.solve(),
                SolveResult::Sat,
                "circuit CNF must be satisfiable"
            );
            let got: Vec<bool> = nl
                .outputs()
                .iter()
                .map(|&o| solver.value(enc.var(o)).unwrap())
                .collect();
            assert_eq!(got, expected, "assignment {assignment:#b}");
        }
    }

    #[test]
    fn encode_every_gate_kind() {
        let mut nl = Netlist::new("all_kinds");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let and = nl.add_gate("and", GateKind::And, vec![a, b]).unwrap();
        let nand = nl.add_gate("nand", GateKind::Nand, vec![a, b, c]).unwrap();
        let or = nl.add_gate("or", GateKind::Or, vec![a, c]).unwrap();
        let nor = nl.add_gate("nor", GateKind::Nor, vec![b, c]).unwrap();
        let xor = nl.add_gate("xor", GateKind::Xor, vec![a, b, c]).unwrap();
        let xnor = nl.add_gate("xnor", GateKind::Xnor, vec![and, or]).unwrap();
        let not = nl.add_gate("not", GateKind::Not, vec![nand]).unwrap();
        let buf = nl.add_gate("buf", GateKind::Buf, vec![nor]).unwrap();
        let mux = nl
            .add_gate("mux", GateKind::Mux, vec![a, xor, xnor])
            .unwrap();
        let c1 = nl.add_gate("one", GateKind::Const1, vec![]).unwrap();
        let fin = nl
            .add_gate("fin", GateKind::And, vec![mux, not, buf, c1])
            .unwrap();
        nl.mark_output(fin);
        nl.mark_output(xor);
        nl.mark_output(mux);
        check_encoding_exhaustive(&nl);
    }

    #[test]
    fn encode_with_key_inputs() {
        let mut nl = Netlist::new("keyed");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let k0 = nl.add_key_input("keyinput0").unwrap();
        let k1 = nl.add_key_input("keyinput1").unwrap();
        let x = nl.add_gate("x", GateKind::Xor, vec![a, k0]).unwrap();
        let m = nl.add_gate("m", GateKind::Mux, vec![k1, x, b]).unwrap();
        nl.mark_output(m);
        check_encoding_exhaustive(&nl);
    }

    #[test]
    fn assert_equal_ties_two_copies_together() {
        let mut nl = Netlist::new("pair");
        let a = nl.add_input("a");
        let y = nl.add_gate("y", GateKind::Not, vec![a]).unwrap();
        nl.mark_output(y);

        let mut solver = Solver::new();
        let enc1 = CircuitEncoder::encode(&mut solver, &nl);
        let enc2 = CircuitEncoder::encode(&mut solver, &nl);
        enc1.assert_equal(&mut solver, a, &enc2, a);
        // Force the two outputs to differ: impossible for identical circuits
        // with tied inputs.
        let o1 = enc1.lit(y, true);
        let o2 = enc2.lit(y, true);
        solver.add_clause(&[o1, o2]);
        solver.add_clause(&[!o1, !o2]);
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn from_vars_rebuilds_the_same_mapping() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let k = nl.add_key_input("keyinput0").unwrap();
        let y = nl.add_gate("y", GateKind::Xor, vec![a, k]).unwrap();
        nl.mark_output(y);
        let mut solver = Solver::new();
        let enc = CircuitEncoder::encode(&mut solver, &nl);
        let rebuilt = CircuitEncoder::from_vars(&nl, enc.vars().to_vec()).unwrap();
        assert_eq!(rebuilt.var(a), enc.var(a));
        assert_eq!(rebuilt.var(y), enc.var(y));
        assert_eq!(
            rebuilt.var_by_name("keyinput0"),
            enc.var_by_name("keyinput0")
        );
        // Wrong cardinality is rejected, not silently misaligned.
        assert!(CircuitEncoder::from_vars(&nl, enc.vars()[1..].to_vec()).is_err());
    }

    #[test]
    fn var_by_name_lookup() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let y = nl.add_gate("y", GateKind::Buf, vec![a]).unwrap();
        nl.mark_output(y);
        let mut solver = Solver::new();
        let enc = CircuitEncoder::encode(&mut solver, &nl);
        assert_eq!(enc.var_by_name("y"), Some(enc.var(y)));
        assert_eq!(enc.var_by_name("zzz"), None);
    }
}
