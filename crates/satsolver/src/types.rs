//! Variables and literals.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// The variable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable with a polarity.
///
/// The internal code is `var * 2 + (negated as u32)`, so literal codes are
/// dense and can index watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with an explicit polarity (`true` = positive).
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` if this literal is positive.
    #[inline]
    pub fn is_pos(self) -> bool {
        !self.is_neg()
    }

    /// Dense code usable as an index (2 codes per variable).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// DIMACS integer representation (1-based, negative when negated).
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().0 + 1) as i64;
        if self.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Parses a DIMACS integer (must be non-zero).
    pub fn from_dimacs(value: i64) -> Option<Lit> {
        if value == 0 {
            return None;
        }
        let var = Var(value.unsigned_abs() as u32 - 1);
        Some(Lit::new(var, value > 0))
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes_and_negation() {
        let v = Var(3);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 6);
        assert_eq!(n.code(), 7);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_roundtrip() {
        let v = Var(9);
        assert_eq!(Lit::pos(v).to_dimacs(), 10);
        assert_eq!(Lit::neg(v).to_dimacs(), -10);
        assert_eq!(Lit::from_dimacs(10), Some(Lit::pos(v)));
        assert_eq!(Lit::from_dimacs(-10), Some(Lit::neg(v)));
        assert_eq!(Lit::from_dimacs(0), None);
    }

    #[test]
    fn display_forms() {
        let v = Var(0);
        assert_eq!(Lit::pos(v).to_string(), "x1");
        assert_eq!(Lit::neg(v).to_string(), "¬x1");
    }
}
