//! Serializable snapshots of a [`Solver`]'s complete search state.
//!
//! A [`SolverSnapshot`] captures everything a CDCL search needs to continue
//! bit-identically after a process kill: the clause database (original and
//! learnt clauses), the watch lists *in their current order* (watcher order
//! determines propagation order, which determines the rest of the search),
//! the trail with its decision levels and reasons, VSIDS activities, phase
//! saving, work counters, and the per-call pause/restart/budget bookkeeping.
//!
//! What a snapshot deliberately does **not** carry is the runtime
//! configuration that a resuming process re-arms itself: the
//! [`SolveBudget`](crate::SolveBudget) (its wall-clock deadline is an
//! `Instant`, meaningless in another process) and the pause granule. Callers
//! restore those with [`Solver::set_budget`] and
//! [`Solver::set_pause_granule`] after [`Solver::from_snapshot`]. The
//! deterministic budget baselines (`base_conflicts`/`base_propagations`)
//! *are* carried, so a propagation-capped call that was paused keeps
//! counting against the same per-call baseline after resuming.

use crate::solver::{Clause, Solver};
use crate::{Lit, SolveBudget, SolverStats};
use serde::{Deserialize, Serialize};

/// The complete serializable search state of a [`Solver`].
///
/// Produced by [`Solver::snapshot`], consumed by [`Solver::from_snapshot`].
/// Round-tripping through serde JSON is exact: `f64` activities use
/// shortest-round-trip formatting, so the restored solver makes the same
/// VSIDS decisions as the original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverSnapshot {
    /// Clause database as `(literals, learnt)` pairs, in attachment order
    /// (clause indices in `watches`/`reason` refer to this order).
    pub(crate) clauses: Vec<(Vec<Lit>, bool)>,
    pub(crate) watches: Vec<Vec<usize>>,
    pub(crate) assigns: Vec<i8>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<Option<usize>>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) polarity: Vec<bool>,
    pub(crate) model: Vec<i8>,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    pub(crate) paused: bool,
    pub(crate) base_conflicts: u64,
    pub(crate) base_propagations: u64,
    pub(crate) conflicts_since_restart: u64,
    pub(crate) restart_limit: u64,
    pub(crate) pause_mark: u64,
}

impl SolverSnapshot {
    /// Number of variables in the snapshotted solver.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// `true` when the snapshot was taken mid-search (the solver was
    /// paused); resuming it continues the suspended solve.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Structural consistency check: every cross-index in the snapshot must
    /// be in range. Returns the first problem found.
    fn validate(&self) -> Result<(), String> {
        let nvars = self.assigns.len();
        let nclauses = self.clauses.len();
        for (name, len) in [
            ("level", self.level.len()),
            ("reason", self.reason.len()),
            ("activity", self.activity.len()),
            ("polarity", self.polarity.len()),
            ("model", self.model.len()),
        ] {
            if len != nvars {
                return Err(format!(
                    "snapshot field {name} has {len} entries for {nvars} variables"
                ));
            }
        }
        if self.watches.len() != 2 * nvars {
            return Err(format!(
                "snapshot has {} watch lists for {nvars} variables",
                self.watches.len()
            ));
        }
        for ws in &self.watches {
            if let Some(&ci) = ws.iter().find(|&&ci| ci >= nclauses) {
                return Err(format!("watch refers to clause {ci} of {nclauses}"));
            }
        }
        for r in self.reason.iter().flatten() {
            if *r >= nclauses {
                return Err(format!("reason refers to clause {r} of {nclauses}"));
            }
        }
        for (lits, _) in &self.clauses {
            if let Some(l) = lits.iter().find(|l| l.var().index() >= nvars) {
                return Err(format!("clause literal {l} exceeds {nvars} variables"));
            }
        }
        if let Some(l) = self.trail.iter().find(|l| l.var().index() >= nvars) {
            return Err(format!("trail literal {l} exceeds {nvars} variables"));
        }
        if self.qhead > self.trail.len() {
            return Err(format!(
                "qhead {} beyond trail length {}",
                self.qhead,
                self.trail.len()
            ));
        }
        if let Some(&lim) = self.trail_lim.iter().find(|&&lim| lim > self.trail.len()) {
            return Err(format!(
                "decision-level limit {lim} beyond trail length {}",
                self.trail.len()
            ));
        }
        if !self.activity.iter().all(|a| a.is_finite()) || !self.var_inc.is_finite() {
            return Err("non-finite VSIDS activity".to_string());
        }
        Ok(())
    }
}

impl Solver {
    /// Captures the solver's complete search state. Valid at any point the
    /// caller holds the solver — between solve calls or while a solve is
    /// suspended via [`Solver::set_pause_granule`].
    pub fn snapshot(&self) -> SolverSnapshot {
        SolverSnapshot {
            clauses: self
                .clauses
                .iter()
                .map(|c| (c.lits.clone(), c.learnt))
                .collect(),
            watches: self.watches.clone(),
            assigns: self.assigns.clone(),
            level: self.level.clone(),
            reason: self.reason.clone(),
            trail: self.trail.clone(),
            trail_lim: self.trail_lim.clone(),
            qhead: self.qhead,
            activity: self.activity.clone(),
            var_inc: self.var_inc,
            polarity: self.polarity.clone(),
            model: self.model.clone(),
            ok: self.ok,
            stats: self.stats,
            paused: self.paused,
            base_conflicts: self.base_conflicts,
            base_propagations: self.base_propagations,
            conflicts_since_restart: self.conflicts_since_restart,
            restart_limit: self.restart_limit,
            pause_mark: self.pause_mark,
        }
    }

    /// Rebuilds a solver from a snapshot. The budget and pause granule are
    /// reset to their defaults (unbounded, no pausing) — re-arm them with
    /// [`Solver::set_budget`] / [`Solver::set_pause_granule`] before the
    /// next solve call; the per-call baselines carried by the snapshot keep
    /// deterministic (conflict/propagation) budgets consistent across the
    /// kill.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural inconsistency found —
    /// a snapshot deserialized from a torn or corrupt checkpoint fails here
    /// instead of panicking deep inside the search.
    pub fn from_snapshot(snapshot: SolverSnapshot) -> Result<Solver, String> {
        snapshot.validate()?;
        Ok(Solver {
            clauses: snapshot
                .clauses
                .into_iter()
                .map(|(lits, learnt)| Clause { lits, learnt })
                .collect(),
            watches: snapshot.watches,
            assigns: snapshot.assigns,
            level: snapshot.level,
            reason: snapshot.reason,
            trail: snapshot.trail,
            trail_lim: snapshot.trail_lim,
            qhead: snapshot.qhead,
            activity: snapshot.activity,
            var_inc: snapshot.var_inc,
            polarity: snapshot.polarity,
            model: snapshot.model,
            ok: snapshot.ok,
            stats: snapshot.stats,
            budget: SolveBudget::default(),
            paused: snapshot.paused,
            base_conflicts: snapshot.base_conflicts,
            base_propagations: snapshot.base_propagations,
            conflicts_since_restart: snapshot.conflicts_since_restart,
            restart_limit: snapshot.restart_limit,
            pause_mark: snapshot.pause_mark,
            pause_granule: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Var};

    /// The unsatisfiable pigeonhole instance used across the solver tests:
    /// hard enough to produce conflicts, restarts and learnt clauses.
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        for i in 0..pigeons {
            for k in (i + 1)..pigeons {
                for (&a, &b) in p[i].iter().zip(&p[k]) {
                    s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
    }

    #[test]
    fn paused_solve_resumes_to_identical_result_and_stats() {
        let mut plain = Solver::new();
        pigeonhole(&mut plain, 7, 6);
        let reference = plain.solve();
        assert_eq!(reference, SolveResult::Unsat);

        let mut paced = Solver::new();
        pigeonhole(&mut paced, 7, 6);
        paced.set_pause_granule(Some(10));
        let mut pauses = 0;
        let result = loop {
            match paced.solve() {
                SolveResult::Paused => pauses += 1,
                verdict => break verdict,
            }
        };
        assert!(pauses > 0, "granule of 10 must pause a pigeonhole search");
        assert_eq!(result, reference);
        assert_eq!(paced.stats(), plain.stats(), "identical search path");
    }

    #[test]
    fn snapshot_roundtrip_mid_solve_is_bit_identical() {
        let mut plain = Solver::new();
        pigeonhole(&mut plain, 7, 6);
        assert_eq!(plain.solve(), SolveResult::Unsat);

        // Same instance, paused every 25 conflicts; at every pause the
        // solver is torn down and rebuilt from a JSON-serialized snapshot.
        let mut live = Solver::new();
        pigeonhole(&mut live, 7, 6);
        live.set_pause_granule(Some(25));
        let mut roundtrips = 0;
        let result = loop {
            match live.solve() {
                SolveResult::Paused => {
                    let json = serde_json::to_string(&live.snapshot()).unwrap();
                    let back: SolverSnapshot = serde_json::from_str(&json).unwrap();
                    assert!(back.is_paused());
                    live = Solver::from_snapshot(back).unwrap();
                    live.set_pause_granule(Some(25));
                    roundtrips += 1;
                }
                verdict => break verdict,
            }
        };
        assert!(roundtrips > 0);
        assert_eq!(result, SolveResult::Unsat);
        assert_eq!(live.stats(), plain.stats(), "identical search path");
    }

    #[test]
    fn snapshot_preserves_sat_models_and_idle_state() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
        s.add_clause(&[Lit::neg(vars[0]), Lit::pos(vars[2])]);
        s.add_clause(&[Lit::neg(vars[2]), Lit::neg(vars[3])]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<_> = vars.iter().map(|&v| s.value(v)).collect();

        let restored = Solver::from_snapshot(s.snapshot()).unwrap();
        assert_eq!(restored.num_vars(), s.num_vars());
        assert_eq!(restored.num_clauses(), s.num_clauses());
        let restored_model: Vec<_> = vars.iter().map(|&v| restored.value(v)).collect();
        assert_eq!(restored_model, model);

        // An idle restored solver stays incremental: add a clause, re-solve.
        let mut restored = restored;
        assert!(restored.add_clause(&[Lit::neg(vars[1])]));
        assert_eq!(restored.solve(), SolveResult::Sat);
    }

    #[test]
    fn pause_interacts_correctly_with_deterministic_budgets() {
        // A propagation-capped call that pauses must cut off at the same
        // search point as the uncapped-pause reference, because the per-call
        // baselines survive the pauses.
        let run = |granule: Option<u64>| {
            let mut s = Solver::new();
            pigeonhole(&mut s, 10, 9);
            s.set_budget(crate::SolveBudget::unbounded().with_max_propagations(20_000));
            s.set_pause_granule(granule);
            let verdict = loop {
                match s.solve() {
                    SolveResult::Paused => continue,
                    verdict => break verdict,
                }
            };
            (verdict, s.stats())
        };
        let (plain_verdict, plain_stats) = run(None);
        let (paced_verdict, paced_stats) = run(Some(7));
        assert_eq!(plain_verdict, SolveResult::Unknown);
        assert_eq!(paced_verdict, SolveResult::Unknown);
        assert_eq!(plain_stats, paced_stats);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_not_panicked_on() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4, 3);
        s.set_pause_granule(Some(1));
        assert_eq!(s.solve(), SolveResult::Paused);
        let good = s.snapshot();

        let mut bad = good.clone();
        bad.watches[0].push(usize::MAX);
        assert!(Solver::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.assigns.pop();
        assert!(Solver::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.qhead = usize::MAX;
        assert!(Solver::from_snapshot(bad).is_err());

        let mut bad = good.clone();
        bad.activity[0] = f64::NAN;
        assert!(Solver::from_snapshot(bad).is_err());

        assert!(Solver::from_snapshot(good).is_ok());
    }
}
