//! Property-based tests for the CDCL solver and the circuit encoder.

use autolock_netlist::{GateId, GateKind, Netlist};
use autolock_satsolver::{CircuitEncoder, CnfFormula, Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// Brute-force satisfiability check for small variable counts.
fn brute_force_sat(num_vars: usize, clauses: &[Vec<Lit>]) -> bool {
    for assignment in 0u32..(1 << num_vars) {
        let value = |l: Lit| {
            let bit = (assignment >> l.var().index()) & 1 == 1;
            if l.is_neg() {
                !bit
            } else {
                bit
            }
        };
        if clauses.iter().all(|c| c.iter().any(|&l| value(l))) {
            return true;
        }
    }
    false
}

fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<Lit>> {
    proptest::collection::vec((0..num_vars as u32, proptest::bool::ANY), 1..4).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, pos)| Lit::new(Var(v), pos))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The solver agrees with a brute-force model enumeration on random small
    /// formulas, and reported models actually satisfy every clause.
    #[test]
    fn solver_agrees_with_brute_force(
        clauses in proptest::collection::vec(clause_strategy(7), 1..30),
    ) {
        let mut solver = Solver::new();
        solver.reserve_vars(7);
        let mut ok = true;
        for c in &clauses {
            ok &= solver.add_clause(c);
        }
        let expected = brute_force_sat(7, &clauses);
        let got = ok && solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected);
        if got {
            for c in &clauses {
                let satisfied = c.iter().any(|&l| {
                    let v = solver.value(l.var()).unwrap();
                    if l.is_neg() { !v } else { v }
                });
                prop_assert!(satisfied, "model does not satisfy clause {:?}", c);
            }
        }
    }

    /// Solving under assumptions never contradicts the assumptions and is
    /// consistent with adding the assumptions as unit clauses.
    #[test]
    fn assumptions_match_unit_clauses(
        clauses in proptest::collection::vec(clause_strategy(6), 1..20),
        assumption_var in 0u32..6,
        assumption_sign in proptest::bool::ANY,
    ) {
        let assumption = Lit::new(Var(assumption_var), assumption_sign);

        let mut with_assumption = Solver::new();
        with_assumption.reserve_vars(6);
        let mut ok_a = true;
        for c in &clauses {
            ok_a &= with_assumption.add_clause(c);
        }
        let result_assumed = if ok_a {
            with_assumption.solve_with_assumptions(&[assumption])
        } else {
            SolveResult::Unsat
        };

        let mut with_unit = Solver::new();
        with_unit.reserve_vars(6);
        let mut ok_u = true;
        for c in &clauses {
            ok_u &= with_unit.add_clause(c);
        }
        ok_u &= with_unit.add_clause(&[assumption]);
        let result_unit = if ok_u { with_unit.solve() } else { SolveResult::Unsat };

        prop_assert_eq!(result_assumed, result_unit);
        if result_assumed == SolveResult::Sat {
            let v = with_assumption.value(assumption.var()).unwrap();
            prop_assert_eq!(v, assumption.is_pos());
        }
    }

    /// DIMACS round trip preserves the formula.
    #[test]
    fn dimacs_roundtrip(
        clauses in proptest::collection::vec(clause_strategy(9), 0..25),
    ) {
        let mut f = CnfFormula::new();
        f.reserve_vars(9);
        for c in &clauses {
            f.add_clause(c.iter().copied());
        }
        let text = f.to_dimacs();
        let back = CnfFormula::from_dimacs(&text).unwrap();
        prop_assert_eq!(back.num_clauses(), f.num_clauses());
        prop_assert_eq!(back.clauses(), f.clauses());
        prop_assert!(back.num_vars() >= f.clauses().iter().flatten().map(|l| l.var().index() + 1).max().unwrap_or(0));
    }
}

/// Builds a small random-ish combinational netlist deterministically from a
/// byte recipe (no RNG dependency needed in this crate's tests).
fn netlist_from_recipe(recipe: &[u8]) -> Netlist {
    let mut nl = Netlist::new("recipe");
    let inputs: Vec<GateId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
    let mut signals = inputs;
    let kinds = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Mux,
    ];
    for (idx, &b) in recipe.iter().enumerate() {
        let kind = kinds[(b % 8) as usize];
        let pick = |offset: usize| signals[(b as usize + offset * 7) % signals.len()];
        let fanin = match kind {
            GateKind::Not => vec![pick(1)],
            GateKind::Mux => vec![pick(1), pick(2), pick(3)],
            _ => vec![pick(1), pick(2)],
        };
        let id = nl.add_gate(format!("g{idx}"), kind, fanin).unwrap();
        signals.push(id);
    }
    let last = *signals.last().unwrap();
    nl.mark_output(last);
    if signals.len() >= 2 {
        nl.mark_output(signals[signals.len() - 2]);
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tseitin encoding is consistent with direct simulation: constraining the
    /// CNF inputs to any assignment yields exactly the simulated outputs.
    #[test]
    fn circuit_encoding_matches_simulation(
        recipe in proptest::collection::vec(any::<u8>(), 1..20),
        assignment in 0u8..16,
    ) {
        let nl = netlist_from_recipe(&recipe);
        let inputs = nl.inputs();
        let bits: Vec<bool> = (0..inputs.len()).map(|i| (assignment >> i) & 1 == 1).collect();
        let expected = nl.evaluate(&bits).unwrap();

        let mut solver = Solver::new();
        let enc = CircuitEncoder::encode(&mut solver, &nl);
        for (&pi, &b) in inputs.iter().zip(&bits) {
            enc.assert_value(&mut solver, pi, b);
        }
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let got: Vec<bool> = nl
            .outputs()
            .iter()
            .map(|&o| solver.value(enc.var(o)).unwrap())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// A miter of a circuit against itself (inputs tied) is unsatisfiable.
    #[test]
    fn self_miter_is_unsat(recipe in proptest::collection::vec(any::<u8>(), 1..16)) {
        let nl = netlist_from_recipe(&recipe);
        let mut solver = Solver::new();
        let a = CircuitEncoder::encode(&mut solver, &nl);
        let b = CircuitEncoder::encode(&mut solver, &nl);
        for pi in nl.inputs() {
            a.assert_equal(&mut solver, pi, &b, pi);
        }
        let mut diff = Vec::new();
        for &o in nl.outputs() {
            let d = Lit::pos(solver.new_var());
            let (la, lb) = (a.lit(o, true), b.lit(o, true));
            solver.add_clause(&[!la, !lb, !d]);
            solver.add_clause(&[la, lb, !d]);
            solver.add_clause(&[!la, lb, d]);
            solver.add_clause(&[la, !lb, d]);
            diff.push(d);
        }
        solver.add_clause(&diff);
        prop_assert_eq!(solver.solve(), SolveResult::Unsat);
    }
}
