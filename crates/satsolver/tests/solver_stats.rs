//! `SolverStats` must be populated by real work: an UNSAT miter exercises
//! decisions, propagations, conflicts and clause learning, and a pigeonhole
//! instance runs long enough to cross the restart threshold.

use autolock_netlist::{GateKind, Netlist};
use autolock_satsolver::{CircuitEncoder, Lit, SolveResult, Solver};

/// An 8-input parity/majority ladder — small, but enough structure that
/// proving the self-miter UNSAT requires actual search, not pure
/// propagation.
fn ladder() -> Netlist {
    let mut nl = Netlist::new("ladder");
    let inputs: Vec<_> = (0..8).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut xors = Vec::new();
    let mut acc = inputs[0];
    for (i, &x) in inputs.iter().enumerate().skip(1) {
        acc = nl
            .add_gate(format!("p{i}"), GateKind::Xor, vec![acc, x])
            .unwrap();
        xors.push(acc);
    }
    let mut ands = Vec::new();
    for (i, pair) in inputs.chunks(2).enumerate() {
        ands.push(
            nl.add_gate(format!("a{i}"), GateKind::And, pair.to_vec())
                .unwrap(),
        );
    }
    let any = nl.add_gate("any", GateKind::Or, ands).unwrap();
    let out = nl.add_gate("y", GateKind::Xor, vec![acc, any]).unwrap();
    nl.mark_output(out);
    nl
}

/// Encodes two copies of the same circuit with shared primary inputs and
/// asserts their outputs differ — unsatisfiable by construction, the same
/// miter shape the SAT attack builds.
#[test]
fn unsat_miter_populates_all_core_stats() {
    let nl = ladder();
    let mut solver = Solver::new();
    let enc_a = CircuitEncoder::encode(&mut solver, &nl);
    let enc_b = CircuitEncoder::encode(&mut solver, &nl);
    for &pi in &nl.inputs() {
        enc_a.assert_equal(&mut solver, pi, &enc_b, pi);
    }
    let mut diff = Vec::new();
    for &o in nl.outputs() {
        let d = Lit::pos(solver.new_var());
        let a = enc_a.lit(o, true);
        let b = enc_b.lit(o, true);
        solver.add_clause(&[!a, !b, !d]);
        solver.add_clause(&[a, b, !d]);
        solver.add_clause(&[!a, b, d]);
        solver.add_clause(&[a, !b, d]);
        diff.push(d);
    }
    solver.add_clause(&diff);

    assert_eq!(solver.solve(), SolveResult::Unsat);
    let stats = solver.stats();
    assert!(stats.decisions > 0, "no decisions: {stats:?}");
    assert!(stats.propagations > 0, "no propagations: {stats:?}");
    assert!(stats.conflicts > 0, "no conflicts: {stats:?}");
    assert!(stats.learned_clauses > 0, "no learned clauses: {stats:?}");
}

/// The pigeonhole principle PHP(8, 7): 8 pigeons cannot fit 7 holes. Hard
/// enough for a CDCL solver that the conflict count crosses the first
/// restart threshold, so the restart counter is exercised too.
#[test]
fn pigeonhole_unsat_triggers_restarts() {
    const PIGEONS: usize = 8;
    const HOLES: usize = 7;
    let mut solver = Solver::new();
    let vars: Vec<Vec<_>> = (0..PIGEONS)
        .map(|_| (0..HOLES).map(|_| solver.new_var()).collect())
        .collect();
    for holes in &vars {
        let clause: Vec<Lit> = holes.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_clause(&clause);
    }
    for h in 0..HOLES {
        for (p1, row1) in vars.iter().enumerate() {
            for row2 in &vars[p1 + 1..] {
                solver.add_clause(&[Lit::neg(row1[h]), Lit::neg(row2[h])]);
            }
        }
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let stats = solver.stats();
    assert!(stats.conflicts >= 100, "too easy: {stats:?}");
    assert!(stats.restarts > 0, "no restarts: {stats:?}");
    assert!(stats.decisions > 0 && stats.learned_clauses > 0);
}
