//! Multi-kill chaos: repeated kills that tear the result stream and the
//! checkpoint files at arbitrary byte offsets never change the final
//! stream. Property-based — each case picks different tear points.

use autolock_circuits::synth_circuit;
use autolock_netlist::write_bench;
use autolock_service::{EngineConfig, JobEngine, JobKind, JobSpec, LockSpec};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static CASE: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autolock_chaos_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small, fast jobs covering all three kinds of persistent state: two SAT
/// jobs (mid-solve checkpoints), one evolution job (generation
/// checkpoints), plus the rows stream they all share.
fn chaos_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec {
            id: "sat-a".into(),
            circuit: "chaos-a".into(),
            source: write_bench(&synth_circuit("chaos-a", 8, 4, 60, 41)),
            seed: 51,
            sequential: Default::default(),
            kind: JobKind::SatAttack {
                lock: LockSpec::Xor { key_len: 4 },
                timeout_ms: 600_000,
                max_propagations_per_solve: None,
                max_iterations: 2000,
            },
        },
        JobSpec {
            id: "evo".into(),
            circuit: "chaos-evo".into(),
            source: write_bench(&synth_circuit("chaos-evo", 8, 3, 80, 42)),
            seed: 52,
            sequential: Default::default(),
            kind: JobKind::Evolve {
                key_len: 4,
                population_size: 3,
                generations: 2,
            },
        },
        JobSpec {
            id: "sat-b".into(),
            circuit: "chaos-b".into(),
            source: write_bench(&synth_circuit("chaos-b", 10, 4, 120, 43)),
            seed: 53,
            sequential: Default::default(),
            kind: JobKind::SatAttack {
                lock: LockSpec::DMux { key_len: 6 },
                timeout_ms: 600_000,
                max_propagations_per_solve: None,
                max_iterations: 2000,
            },
        },
    ]
}

fn config(dir: &Path) -> EngineConfig {
    let mut config = EngineConfig::rooted(dir, 0);
    // Checkpoint at every conflict so SAT checkpoints exist even on these
    // small instances, and the tear points land on real mid-run state.
    config.sat_step_conflicts = Some(1);
    config
}

/// The fault-free stream, computed once: what every chaotic life sequence
/// must converge to, byte for byte.
fn reference_bytes() -> &'static [u8] {
    static REFERENCE: OnceLock<Vec<u8>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let dir = scratch("ref");
        let engine = JobEngine::new(config(&dir)).unwrap();
        engine.run(&chaos_jobs()).unwrap();
        let bytes = fs::read(dir.join("rows.jsonl")).unwrap();
        let _ = fs::remove_dir_all(&dir);
        bytes
    })
}

/// Simulates a kill mid-write: keeps only the first `frac` of the file.
/// `frac` of 1.0 keeps everything — the "killed after the write" no-op.
fn truncate_at(path: &Path, frac: f64) {
    let Ok(bytes) = fs::read(path) else { return };
    let keep = ((bytes.len() as f64) * frac) as usize;
    fs::write(path, &bytes[..keep.min(bytes.len())]).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    fn multi_kill_resume_converges_to_the_reference_stream(
        frac1 in 0.0f64..=1.0,
        frac2 in 0.0f64..=1.0,
        ckpt_frac in 0.0f64..=1.0,
    ) {
        let jobs = chaos_jobs();
        let case = CASE.fetch_add(1, Ordering::SeqCst);
        let dir = scratch(&format!("case{case}"));
        let rows = dir.join("rows.jsonl");

        // Life 1: finish part of the batch, then die mid-write of the
        // stream.
        JobEngine::new(config(&dir)).unwrap().run(&jobs[..2]).unwrap();
        truncate_at(&rows, frac1);

        // Life 2: run the whole batch, then die again — this time also
        // tearing every checkpoint on disk at an arbitrary offset.
        JobEngine::new(config(&dir)).unwrap().run(&jobs).unwrap();
        truncate_at(&rows, frac2);
        for entry in fs::read_dir(dir.join("checkpoints")).unwrap() {
            let path = entry.unwrap().path();
            if path.is_file() {
                truncate_at(&path, ckpt_frac);
            }
        }

        // Life 3: the survivor. Whatever was lost is recomputed; whatever
        // survived is reused; the stream must match the never-killed run.
        JobEngine::new(config(&dir)).unwrap().run(&jobs).unwrap();
        prop_assert_eq!(fs::read(&rows).unwrap(), reference_bytes());
        let _ = fs::remove_dir_all(&dir);
    }
}
