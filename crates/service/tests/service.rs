//! End-to-end contracts of the job engine: resume bit-identity, GA
//! checkpoint reuse, registry hits, and directory serving.

use autolock_attacks::MuxLinkConfig;
use autolock_circuits::{suite_circuit, synth_circuit};
use autolock_netlist::write_bench;
use autolock_service::{
    jobs_from_dir, DirJobConfig, EngineConfig, JobEngine, JobKind, JobSpec, JobStatus, LockSpec,
};
use std::fs;
use std::path::PathBuf;

/// A fresh scratch directory unique to this test (and process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autolock_svc_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_source(seed: u64) -> String {
    write_bench(&synth_circuit("svc", 10, 4, 120, seed))
}

/// A mixed batch: two SAT jobs (one easy, one with a deterministic induced
/// timeout on a genuinely hard structured miter), a MuxLink job, a small
/// evolution job, and a malformed circuit.
fn mixed_jobs() -> Vec<JobSpec> {
    let hard = write_bench(&suite_circuit("st6288").expect("suite circuit"));
    vec![
        JobSpec {
            id: "sat-easy".into(),
            circuit: "svc-easy".into(),
            source: tiny_source(3),
            seed: 11,
            kind: JobKind::SatAttack {
                lock: LockSpec::Xor { key_len: 8 },
                timeout_ms: 600_000,
                max_propagations_per_solve: None,
                max_iterations: 2000,
            },
        },
        JobSpec {
            id: "sat-capped".into(),
            circuit: "st6288".into(),
            source: hard,
            seed: 12,
            kind: JobKind::SatAttack {
                lock: LockSpec::DMux { key_len: 16 },
                timeout_ms: 600_000,
                max_propagations_per_solve: Some(20_000),
                max_iterations: 30,
            },
        },
        JobSpec {
            id: "muxlink".into(),
            circuit: "svc-ml".into(),
            source: tiny_source(4),
            seed: 13,
            kind: JobKind::MuxLinkAttack {
                lock: LockSpec::DMux { key_len: 8 },
                attack: MuxLinkConfig::fast(),
            },
        },
        JobSpec {
            id: "evolve".into(),
            circuit: "svc-evo".into(),
            source: write_bench(&synth_circuit("svc-evo", 8, 3, 80, 5)),
            seed: 14,
            kind: JobKind::Evolve {
                key_len: 4,
                population_size: 3,
                generations: 1,
            },
        },
        JobSpec {
            id: "broken".into(),
            circuit: "broken".into(),
            source: "INPUT(a)\nnot bench at all".into(),
            seed: 15,
            kind: JobKind::SatAttack {
                lock: LockSpec::Xor { key_len: 4 },
                timeout_ms: 1000,
                max_propagations_per_solve: None,
                max_iterations: 10,
            },
        },
    ]
}

/// The headline tentpole guarantee: a run that was interrupted (rows
/// already on disk, a torn trailing line from the kill) and then resumed
/// produces a byte-identical result stream to a run that was never
/// interrupted.
#[test]
fn resumed_run_is_bit_identical_to_uninterrupted_run() {
    let jobs = mixed_jobs();

    let dir_a = scratch("uninterrupted");
    let engine_a = JobEngine::new(EngineConfig::rooted(&dir_a, 0)).unwrap();
    let rows_a = engine_a.run(&jobs).unwrap();
    let bytes_a = fs::read(dir_a.join("rows.jsonl")).unwrap();

    // Interrupted variant: finish only the first two jobs, simulate the
    // kill's torn trailing line, then resume with the full batch.
    let dir_b = scratch("resumed");
    let engine_b = JobEngine::new(EngineConfig::rooted(&dir_b, 0)).unwrap();
    engine_b.run(&jobs[..2]).unwrap();
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir_b.join("rows.jsonl"))
            .unwrap();
        write!(f, "{{\"job_id\":\"torn").unwrap();
    }
    let rows_b = engine_b.run(&jobs).unwrap();
    let bytes_b = fs::read(dir_b.join("rows.jsonl")).unwrap();

    assert_eq!(rows_a, rows_b);
    assert_eq!(bytes_a, bytes_b, "result streams must be byte-identical");

    // Sanity on the row content itself.
    assert_eq!(rows_a.len(), jobs.len());
    assert_eq!(rows_a[0].status, JobStatus::Ok);
    assert!(rows_a[0].success);
    assert_eq!(rows_a[1].status, JobStatus::Timeout);
    assert!(!rows_a[1].success);
    assert_eq!(rows_a[2].status, JobStatus::Ok);
    assert!(rows_a[2].key_accuracy.is_some());
    assert_eq!(rows_a[3].status, JobStatus::Ok);
    assert_eq!(rows_a[3].iterations, 1);
    assert_eq!(rows_a[4].status, JobStatus::Error);
    assert!(rows_a[4].error.is_some());

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

fn evolve_job(generations: usize, seed: u64) -> JobSpec {
    JobSpec {
        id: "evo".into(),
        circuit: "svc-evo".into(),
        source: write_bench(&synth_circuit("svc-evo", 8, 3, 80, 5)),
        seed,
        kind: JobKind::Evolve {
            key_len: 4,
            population_size: 3,
            generations,
        },
    }
}

/// A mid-run GA checkpoint (here: the generation-1 state of a shorter run,
/// which is bit-identical to the generation-1 state of the longer run) is
/// picked up and continued, and the finished row equals the
/// never-interrupted row exactly.
#[test]
fn evolution_resumes_from_generation_checkpoint_bit_identically() {
    // Produce a genuine mid-run checkpoint: run the same job with a
    // 1-generation budget; its final checkpoint is exactly the state a
    // 2-generation run has after generation 1.
    let dir_short = scratch("evo_short");
    let engine_short = JobEngine::new(EngineConfig::rooted(&dir_short, 1)).unwrap();
    engine_short.run(&[evolve_job(1, 21)]).unwrap();
    let ckpt = fs::read(engine_short.checkpoint_path("evo")).unwrap();

    // Resumed run: seed the checkpoint, then ask for 2 generations.
    let dir_resume = scratch("evo_resume");
    let engine_resume = JobEngine::new(EngineConfig::rooted(&dir_resume, 1)).unwrap();
    fs::write(engine_resume.checkpoint_path("evo"), &ckpt).unwrap();
    let rows_resume = engine_resume.run(&[evolve_job(2, 21)]).unwrap();

    // Reference: the same 2-generation job, never interrupted.
    let dir_fresh = scratch("evo_fresh");
    let engine_fresh = JobEngine::new(EngineConfig::rooted(&dir_fresh, 1)).unwrap();
    let rows_fresh = engine_fresh.run(&[evolve_job(2, 21)]).unwrap();

    assert_eq!(rows_resume, rows_fresh);
    assert_eq!(rows_resume[0].iterations, 2);

    // Prove the checkpoint was actually used (not silently recomputed):
    // hand a *finished* checkpoint to a job whose own seed would evolve
    // differently — the row must reflect the checkpointed run.
    let done_ckpt = fs::read(engine_fresh.checkpoint_path("evo")).unwrap();
    let dir_alien = scratch("evo_alien");
    let engine_alien = JobEngine::new(EngineConfig::rooted(&dir_alien, 1)).unwrap();
    fs::write(engine_alien.checkpoint_path("evo"), &done_ckpt).unwrap();
    let rows_alien = engine_alien.run(&[evolve_job(2, 9999)]).unwrap();
    assert_eq!(rows_alien[0].key_accuracy, rows_fresh[0].key_accuracy);

    for d in [dir_short, dir_resume, dir_fresh, dir_alien] {
        let _ = fs::remove_dir_all(&d);
    }
}

/// A registry hit skips training yet yields a bit-identical row, and the
/// registry holds exactly one model for the repeated (circuit, config,
/// seed) triple.
#[test]
fn registry_hit_reproduces_the_trained_row_exactly() {
    autolock_obs::enable();
    let registry_dir = scratch("registry_shared");
    let job = JobSpec {
        id: "ml".into(),
        circuit: "svc-ml".into(),
        source: tiny_source(4),
        seed: 31,
        kind: JobKind::MuxLinkAttack {
            lock: LockSpec::DMux { key_len: 8 },
            attack: MuxLinkConfig::fast(),
        },
    };

    let run_in = |tag: &str| {
        let dir = scratch(tag);
        let config = EngineConfig {
            out_path: dir.join("rows.jsonl"),
            checkpoint_dir: dir.join("checkpoints"),
            registry_dir: Some(registry_dir.clone()),
            threads: 1,
            chunk: 8,
        };
        let engine = JobEngine::new(config).unwrap();
        let rows = engine.run(std::slice::from_ref(&job)).unwrap();
        let stored = engine.registry().unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        (rows, stored)
    };

    let hits_before = autolock_obs::counter("service.registry.hits").value();
    let (rows_first, stored_first) = run_in("registry_first");
    let (rows_second, stored_second) = run_in("registry_second");
    let hits_after = autolock_obs::counter("service.registry.hits").value();

    assert_eq!(rows_first, rows_second);
    assert_eq!(stored_first, 1);
    assert_eq!(stored_second, 1, "repeat run must reuse the stored model");
    assert!(
        hits_after > hits_before,
        "second run must hit the registry ({hits_before} -> {hits_after})"
    );
    let _ = fs::remove_dir_all(&registry_dir);
}

/// `jobs_from_dir` scans `.bench` files in sorted order, derives stable
/// per-circuit seeds, and the engine emits one status row per instance —
/// malformed files included.
#[test]
fn serves_a_directory_with_one_row_per_instance() {
    let bench_dir = scratch("bench_dir");
    fs::write(bench_dir.join("b.bench"), tiny_source(7)).unwrap();
    fs::write(bench_dir.join("a.bench"), tiny_source(8)).unwrap();
    fs::write(bench_dir.join("zz-broken.bench"), "garbage(").unwrap();
    fs::write(bench_dir.join("notes.txt"), "ignored").unwrap();

    let config = DirJobConfig {
        lock: LockSpec::Xor { key_len: 8 },
        seed: 1,
        ..DirJobConfig::default()
    };
    let jobs = jobs_from_dir(&bench_dir, &config).unwrap();
    let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
    assert_eq!(ids, ["a", "b", "zz-broken"]);
    assert_ne!(jobs[0].seed, jobs[1].seed);

    let out_dir = scratch("bench_out");
    let engine = JobEngine::new(EngineConfig::rooted(&out_dir, 0)).unwrap();
    let rows = engine.run(&jobs).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].status, JobStatus::Ok);
    assert_eq!(rows[1].status, JobStatus::Ok);
    assert_eq!(rows[2].status, JobStatus::Error);
    assert!(rows[2].error.as_deref().unwrap_or("").contains("parse"));

    let _ = fs::remove_dir_all(&bench_dir);
    let _ = fs::remove_dir_all(&out_dir);
}
