//! End-to-end contracts of the job engine: resume bit-identity, GA
//! checkpoint reuse, registry hits, and directory serving.

use autolock_attacks::MuxLinkConfig;
use autolock_circuits::{suite_circuit, synth_circuit};
use autolock_netlist::write_bench;
use autolock_service::{
    jobs_from_dir, DirJobConfig, EngineConfig, FaultKind, FaultPlan, FaultSpec, JobEngine, JobKind,
    JobSpec, JobStatus, LockSpec,
};
use std::fs;
use std::path::PathBuf;

/// A fresh scratch directory unique to this test (and process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autolock_svc_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn tiny_source(seed: u64) -> String {
    write_bench(&synth_circuit("svc", 10, 4, 120, seed))
}

/// A mixed batch: two SAT jobs (one easy, one with a deterministic induced
/// timeout on a genuinely hard structured miter), a MuxLink job, a small
/// evolution job, and a malformed circuit.
fn mixed_jobs() -> Vec<JobSpec> {
    let hard = write_bench(&suite_circuit("st6288").expect("suite circuit"));
    vec![
        JobSpec {
            id: "sat-easy".into(),
            circuit: "svc-easy".into(),
            source: tiny_source(3),
            seed: 11,
            sequential: Default::default(),
            kind: JobKind::SatAttack {
                lock: LockSpec::Xor { key_len: 8 },
                timeout_ms: 600_000,
                max_propagations_per_solve: None,
                max_iterations: 2000,
            },
        },
        JobSpec {
            id: "sat-capped".into(),
            circuit: "st6288".into(),
            source: hard,
            seed: 12,
            sequential: Default::default(),
            kind: JobKind::SatAttack {
                lock: LockSpec::DMux { key_len: 16 },
                timeout_ms: 600_000,
                max_propagations_per_solve: Some(20_000),
                max_iterations: 30,
            },
        },
        JobSpec {
            id: "muxlink".into(),
            circuit: "svc-ml".into(),
            source: tiny_source(4),
            seed: 13,
            sequential: Default::default(),
            kind: JobKind::MuxLinkAttack {
                lock: LockSpec::DMux { key_len: 8 },
                attack: MuxLinkConfig::fast(),
            },
        },
        JobSpec {
            id: "evolve".into(),
            circuit: "svc-evo".into(),
            source: write_bench(&synth_circuit("svc-evo", 8, 3, 80, 5)),
            seed: 14,
            sequential: Default::default(),
            kind: JobKind::Evolve {
                key_len: 4,
                population_size: 3,
                generations: 1,
            },
        },
        JobSpec {
            id: "broken".into(),
            circuit: "broken".into(),
            source: "INPUT(a)\nnot bench at all".into(),
            seed: 15,
            sequential: Default::default(),
            kind: JobKind::SatAttack {
                lock: LockSpec::Xor { key_len: 4 },
                timeout_ms: 1000,
                max_propagations_per_solve: None,
                max_iterations: 10,
            },
        },
    ]
}

/// The headline tentpole guarantee: a run that was interrupted (rows
/// already on disk, a torn trailing line from the kill) and then resumed
/// produces a byte-identical result stream to a run that was never
/// interrupted.
#[test]
fn resumed_run_is_bit_identical_to_uninterrupted_run() {
    let jobs = mixed_jobs();

    let dir_a = scratch("uninterrupted");
    let engine_a = JobEngine::new(EngineConfig::rooted(&dir_a, 0)).unwrap();
    let rows_a = engine_a.run(&jobs).unwrap();
    let bytes_a = fs::read(dir_a.join("rows.jsonl")).unwrap();

    // Interrupted variant: finish only the first two jobs, simulate the
    // kill's torn trailing line, then resume with the full batch.
    let dir_b = scratch("resumed");
    let engine_b = JobEngine::new(EngineConfig::rooted(&dir_b, 0)).unwrap();
    engine_b.run(&jobs[..2]).unwrap();
    {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(dir_b.join("rows.jsonl"))
            .unwrap();
        write!(f, "{{\"job_id\":\"torn").unwrap();
    }
    let rows_b = engine_b.run(&jobs).unwrap();
    let bytes_b = fs::read(dir_b.join("rows.jsonl")).unwrap();

    assert_eq!(rows_a, rows_b);
    assert_eq!(bytes_a, bytes_b, "result streams must be byte-identical");

    // Sanity on the row content itself.
    assert_eq!(rows_a.len(), jobs.len());
    assert_eq!(rows_a[0].status, JobStatus::Ok);
    assert!(rows_a[0].success);
    assert_eq!(rows_a[1].status, JobStatus::Timeout);
    assert!(!rows_a[1].success);
    assert_eq!(rows_a[2].status, JobStatus::Ok);
    assert!(rows_a[2].key_accuracy.is_some());
    assert_eq!(rows_a[3].status, JobStatus::Ok);
    assert_eq!(rows_a[3].iterations, 1);
    assert_eq!(rows_a[4].status, JobStatus::Error);
    assert!(rows_a[4].error.is_some());

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

fn evolve_job(generations: usize, seed: u64) -> JobSpec {
    JobSpec {
        id: "evo".into(),
        circuit: "svc-evo".into(),
        source: write_bench(&synth_circuit("svc-evo", 8, 3, 80, 5)),
        seed,
        sequential: Default::default(),
        kind: JobKind::Evolve {
            key_len: 4,
            population_size: 3,
            generations,
        },
    }
}

/// A mid-run GA checkpoint (here: the generation-1 state of a shorter run,
/// which is bit-identical to the generation-1 state of the longer run) is
/// picked up and continued, and the finished row equals the
/// never-interrupted row exactly.
#[test]
fn evolution_resumes_from_generation_checkpoint_bit_identically() {
    // Produce a genuine mid-run checkpoint: run the same job with a
    // 1-generation budget; its final checkpoint is exactly the state a
    // 2-generation run has after generation 1.
    let dir_short = scratch("evo_short");
    let engine_short = JobEngine::new(EngineConfig::rooted(&dir_short, 1)).unwrap();
    engine_short.run(&[evolve_job(1, 21)]).unwrap();
    let ckpt = fs::read(engine_short.checkpoint_path("evo")).unwrap();

    // Resumed run: seed the checkpoint, then ask for 2 generations.
    let dir_resume = scratch("evo_resume");
    let engine_resume = JobEngine::new(EngineConfig::rooted(&dir_resume, 1)).unwrap();
    fs::write(engine_resume.checkpoint_path("evo"), &ckpt).unwrap();
    let rows_resume = engine_resume.run(&[evolve_job(2, 21)]).unwrap();

    // Reference: the same 2-generation job, never interrupted.
    let dir_fresh = scratch("evo_fresh");
    let engine_fresh = JobEngine::new(EngineConfig::rooted(&dir_fresh, 1)).unwrap();
    let rows_fresh = engine_fresh.run(&[evolve_job(2, 21)]).unwrap();

    assert_eq!(rows_resume, rows_fresh);
    assert_eq!(rows_resume[0].iterations, 2);

    // Prove the checkpoint was actually used (not silently recomputed):
    // hand a *finished* checkpoint to a job whose own seed would evolve
    // differently — the row must reflect the checkpointed run.
    let done_ckpt = fs::read(engine_fresh.checkpoint_path("evo")).unwrap();
    let dir_alien = scratch("evo_alien");
    let engine_alien = JobEngine::new(EngineConfig::rooted(&dir_alien, 1)).unwrap();
    fs::write(engine_alien.checkpoint_path("evo"), &done_ckpt).unwrap();
    let rows_alien = engine_alien.run(&[evolve_job(2, 9999)]).unwrap();
    assert_eq!(rows_alien[0].key_accuracy, rows_fresh[0].key_accuracy);

    for d in [dir_short, dir_resume, dir_fresh, dir_alien] {
        let _ = fs::remove_dir_all(&d);
    }
}

fn island_evolve_job(generations: usize, seed: u64) -> JobSpec {
    JobSpec {
        id: "evo-isl".into(),
        circuit: "svc-evo".into(),
        source: write_bench(&synth_circuit("svc-evo", 8, 3, 80, 5)),
        seed,
        sequential: Default::default(),
        kind: JobKind::EvolveIslands {
            key_len: 4,
            population_size: 4,
            generations,
            islands: 2,
            migration_interval: 1,
            migrants: 1,
            surrogate: false,
        },
    }
}

/// An island-evolve job killed at a generation boundary resumes from its
/// `{id}.iga.json` checkpoint — through the unified `Resumable` path — to
/// the exact row an uninterrupted run produces.
#[test]
fn island_evolution_resumes_from_generation_checkpoint_bit_identically() {
    use autolock_evo::Resumable;
    autolock_obs::enable();

    let dir_fresh = scratch("isl_fresh");
    let engine_fresh = JobEngine::new(EngineConfig::rooted(&dir_fresh, 1)).unwrap();
    let rows_fresh = engine_fresh.run(&[island_evolve_job(2, 21)]).unwrap();
    assert_eq!(rows_fresh[0].status, JobStatus::Ok);
    assert_eq!(rows_fresh[0].attack, "evolve");
    assert_eq!(rows_fresh[0].iterations, 2);

    // Reproduce what the engine persists mid-run: build the same job
    // bundle, step it one generation, and park the checkpoint where the
    // engine will look for it.
    let dir_resume = scratch("isl_resume");
    let engine_resume = JobEngine::new(EngineConfig::rooted(&dir_resume, 1)).unwrap();
    {
        let spec = island_evolve_job(2, 21);
        let bundle = autolock_service::IslandEvolveJob::from_spec(&spec, 1).unwrap();
        let job = bundle.resumable();
        let mut state = job.init_state();
        assert!(job.step(&mut state));
        let ckpt = serde_json::to_string(&job.checkpoint(&state)).unwrap();
        engine_resume
            .store()
            .write(
                &JobEngine::island_checkpoint_name("evo-isl"),
                ckpt.as_bytes(),
            )
            .unwrap();
    }
    let resumes_before = autolock_obs::counter("service.evolve_resumes").value();
    let rows_resume = engine_resume.run(&[island_evolve_job(2, 21)]).unwrap();
    assert!(
        autolock_obs::counter("service.evolve_resumes").value() > resumes_before,
        "the engine must resume from the seeded island checkpoint"
    );
    assert_eq!(rows_fresh, rows_resume);
    assert_eq!(
        fs::read(dir_fresh.join("rows.jsonl")).unwrap(),
        fs::read(dir_resume.join("rows.jsonl")).unwrap()
    );

    let _ = fs::remove_dir_all(&dir_fresh);
    let _ = fs::remove_dir_all(&dir_resume);
}

/// `--evolve-islands`-style configs route evolve jobs through the island
/// engine under the same ids and per-id seeds, so enabling islands never
/// reshuffles the existing rows of the other kinds.
#[test]
fn island_dir_jobs_keep_ids_and_seeds_stable() {
    let bench_dir = scratch("bench_islands");
    fs::write(bench_dir.join("a.bench"), tiny_source(8)).unwrap();

    let base = DirJobConfig {
        lock: LockSpec::Xor { key_len: 4 },
        seed: 1,
        kinds: autolock_service::DirJobKinds {
            sat: true,
            muxlink: true,
            evolve: true,
        },
        evolve_population: 4,
        evolve_generations: 1,
        ..DirJobConfig::default()
    };
    let classic = jobs_from_dir(&bench_dir, &base).unwrap();
    let islands = jobs_from_dir(
        &bench_dir,
        &DirJobConfig {
            evolve_islands: 2,
            ..base
        },
    )
    .unwrap();

    assert_eq!(classic.len(), islands.len());
    for (c, i) in classic.iter().zip(&islands) {
        assert_eq!(c.id, i.id);
        assert_eq!(c.seed, i.seed);
    }
    assert!(matches!(
        islands.iter().find(|j| j.id == "a.evolve").unwrap().kind,
        JobKind::EvolveIslands {
            islands: 2,
            migration_interval: 1,
            migrants: 1,
            surrogate: false,
            ..
        }
    ));
    assert!(matches!(
        classic.iter().find(|j| j.id == "a.evolve").unwrap().kind,
        JobKind::Evolve { .. }
    ));

    let _ = fs::remove_dir_all(&bench_dir);
}

/// A registry hit skips training yet yields a bit-identical row, and the
/// registry holds exactly one model for the repeated (circuit, config,
/// seed) triple.
#[test]
fn registry_hit_reproduces_the_trained_row_exactly() {
    autolock_obs::enable();
    let registry_dir = scratch("registry_shared");
    let job = JobSpec {
        id: "ml".into(),
        circuit: "svc-ml".into(),
        source: tiny_source(4),
        seed: 31,
        sequential: Default::default(),
        kind: JobKind::MuxLinkAttack {
            lock: LockSpec::DMux { key_len: 8 },
            attack: MuxLinkConfig::fast(),
        },
    };

    let run_in = |tag: &str| {
        let dir = scratch(tag);
        let config = EngineConfig {
            registry_dir: Some(registry_dir.clone()),
            threads: 1,
            ..EngineConfig::rooted(&dir, 1)
        };
        let engine = JobEngine::new(config).unwrap();
        let rows = engine.run(std::slice::from_ref(&job)).unwrap();
        let stored = engine.registry().unwrap().len();
        let _ = fs::remove_dir_all(&dir);
        (rows, stored)
    };

    let hits_before = autolock_obs::counter("service.registry.hits").value();
    let (rows_first, stored_first) = run_in("registry_first");
    let (rows_second, stored_second) = run_in("registry_second");
    let hits_after = autolock_obs::counter("service.registry.hits").value();

    assert_eq!(rows_first, rows_second);
    assert_eq!(stored_first, 1);
    assert_eq!(stored_second, 1, "repeat run must reuse the stored model");
    assert!(
        hits_after > hits_before,
        "second run must hit the registry ({hits_before} -> {hits_after})"
    );
    let _ = fs::remove_dir_all(&registry_dir);
}

/// `jobs_from_dir` scans `.bench` files in sorted order, derives stable
/// per-circuit seeds, and the engine emits one status row per instance —
/// malformed files included.
#[test]
fn serves_a_directory_with_one_row_per_instance() {
    let bench_dir = scratch("bench_dir");
    fs::write(bench_dir.join("b.bench"), tiny_source(7)).unwrap();
    fs::write(bench_dir.join("a.bench"), tiny_source(8)).unwrap();
    fs::write(bench_dir.join("zz-broken.bench"), "garbage(").unwrap();
    fs::write(bench_dir.join("notes.txt"), "ignored").unwrap();

    let config = DirJobConfig {
        lock: LockSpec::Xor { key_len: 8 },
        seed: 1,
        ..DirJobConfig::default()
    };
    let jobs = jobs_from_dir(&bench_dir, &config).unwrap();
    let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
    assert_eq!(ids, ["a", "b", "zz-broken"]);
    assert_ne!(jobs[0].seed, jobs[1].seed);

    let out_dir = scratch("bench_out");
    let engine = JobEngine::new(EngineConfig::rooted(&out_dir, 0)).unwrap();
    let rows = engine.run(&jobs).unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0].status, JobStatus::Ok);
    assert_eq!(rows[1].status, JobStatus::Ok);
    assert_eq!(rows[2].status, JobStatus::Error);
    assert!(rows[2].error.as_deref().unwrap_or("").contains("parse"));

    let _ = fs::remove_dir_all(&bench_dir);
    let _ = fs::remove_dir_all(&out_dir);
}

/// `jobs_from_dir` with all kinds enabled emits one job per (circuit,
/// kind), and the engine reports a per-kind status row for each.
#[test]
fn serves_a_directory_with_every_job_kind() {
    let bench_dir = scratch("bench_kinds");
    fs::write(bench_dir.join("a.bench"), tiny_source(8)).unwrap();
    fs::write(bench_dir.join("broken.bench"), "garbage(").unwrap();

    let config = DirJobConfig {
        lock: LockSpec::Xor { key_len: 4 },
        seed: 1,
        kinds: autolock_service::DirJobKinds {
            sat: true,
            muxlink: true,
            evolve: true,
        },
        evolve_population: 3,
        evolve_generations: 1,
        ..DirJobConfig::default()
    };
    let jobs = jobs_from_dir(&bench_dir, &config).unwrap();
    let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
    assert_eq!(
        ids,
        [
            "a",
            "a.muxlink",
            "a.evolve",
            "broken",
            "broken.muxlink",
            "broken.evolve"
        ]
    );
    // Per-id seed mixing: enabling more kinds never reshuffles others.
    let sat_only = jobs_from_dir(
        &bench_dir,
        &DirJobConfig {
            lock: LockSpec::Xor { key_len: 4 },
            seed: 1,
            ..DirJobConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sat_only[0].seed, jobs[0].seed);

    let out_dir = scratch("bench_kinds_out");
    let engine = JobEngine::new(EngineConfig::rooted(&out_dir, 0)).unwrap();
    let rows = engine.run(&jobs).unwrap();
    assert_eq!(rows.len(), 6);
    assert_eq!(rows[0].attack, "sat");
    assert!(rows[1].attack.starts_with("muxlink"));
    assert_eq!(rows[2].attack, "evolve");
    for row in &rows[..3] {
        assert_eq!(row.status, JobStatus::Ok, "{row:?}");
    }
    // The malformed circuit fails per kind, with the kind's own label.
    for (row, label) in rows[3..].iter().zip(["sat", "muxlink", "evolve"]) {
        assert_eq!(row.status, JobStatus::Error, "{row:?}");
        assert_eq!(row.attack, label);
    }

    let _ = fs::remove_dir_all(&bench_dir);
    let _ = fs::remove_dir_all(&out_dir);
}

/// A SAT job picks up a mid-run checkpoint (written at a step boundary, as
/// the engine does before a kill) and finishes with the exact row an
/// uninterrupted run produces.
#[test]
fn sat_job_resumes_from_a_mid_run_checkpoint_bit_identically() {
    autolock_obs::enable();
    let job = &mixed_jobs()[0]; // sat-easy
    let granule = Some(1);

    let dir_a = scratch("sat_ref");
    let mut config_a = EngineConfig::rooted(&dir_a, 1);
    config_a.sat_step_conflicts = granule;
    let engine_a = JobEngine::new(config_a).unwrap();
    let rows_a = engine_a.run(std::slice::from_ref(job)).unwrap();

    // Reproduce what the engine persists mid-run: derive the same locked
    // netlist from the job seed, step the attack three boundaries, and
    // write the framed checkpoint under the job's checkpoint name.
    let dir_b = scratch("sat_resume");
    let mut config_b = EngineConfig::rooted(&dir_b, 1);
    config_b.sat_step_conflicts = granule;
    let engine_b = JobEngine::new(config_b).unwrap();
    {
        use autolock_attacks::{SatAttack, SatAttackConfig};
        use rand::SeedableRng;
        // Same front-door path the engine takes when loading the job.
        let opts = autolock_netlist::ingest::IngestOptions {
            sequential: job.sequential,
            ..Default::default()
        };
        let netlist = autolock_netlist::ingest::parse_auto(&job.circuit, &job.source, &opts)
            .unwrap()
            .netlist;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(job.seed);
        let JobKind::SatAttack { lock, .. } = &job.kind else {
            unreachable!("sat job")
        };
        let locked = lock.apply(&netlist, &mut rng).unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations: 2000,
            timeout_ms: 600_000,
            max_propagations_per_solve: None,
            checkpoint_conflicts: granule,
        });
        let mut state = attack.init_state(&locked, &netlist);
        for _ in 0..3 {
            if !attack.step(&mut state, &locked, &netlist) {
                break;
            }
        }
        let ckpt = serde_json::to_string(&attack.checkpoint(&state)).unwrap();
        engine_b
            .store()
            .write("sat-easy.sat.json", ckpt.as_bytes())
            .unwrap();
    }
    let resumes_before = autolock_obs::counter("service.sat_resumes").value();
    let rows_b = engine_b.run(std::slice::from_ref(job)).unwrap();
    assert!(
        autolock_obs::counter("service.sat_resumes").value() > resumes_before,
        "the engine must resume from the seeded checkpoint"
    );
    assert_eq!(rows_a, rows_b);
    assert_eq!(
        fs::read(dir_a.join("rows.jsonl")).unwrap(),
        fs::read(dir_b.join("rows.jsonl")).unwrap()
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// A corrupt (here: truncated mid-record) GA checkpoint is detected,
/// quarantined, and the job recomputes from its seed to the identical row —
/// corruption costs work, never correctness and never a crash.
#[test]
fn corrupt_ga_checkpoint_is_quarantined_and_recomputed() {
    autolock_obs::enable();
    let dir_a = scratch("ga_ref");
    let engine_a = JobEngine::new(EngineConfig::rooted(&dir_a, 1)).unwrap();
    let rows_a = engine_a.run(&[evolve_job(2, 21)]).unwrap();

    let dir_b = scratch("ga_corrupt");
    let engine_b = JobEngine::new(EngineConfig::rooted(&dir_b, 1)).unwrap();
    // A realistic torn write: a valid checkpoint's bytes cut mid-record.
    let good = fs::read(engine_a.checkpoint_path("evo")).unwrap();
    fs::write(engine_b.checkpoint_path("evo"), &good[..good.len() / 2]).unwrap();

    let corrupt_before = autolock_obs::counter("service.store.corrupt").value();
    let rows_b = engine_b.run(&[evolve_job(2, 21)]).unwrap();
    assert_eq!(rows_a, rows_b);
    assert!(
        autolock_obs::counter("service.store.corrupt").value() > corrupt_before,
        "the torn checkpoint must be detected"
    );
    assert!(
        dir_b.join("quarantine").join("evo.ga.json").exists(),
        "the torn checkpoint must be quarantined"
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// A transiently panicking job is retried and its row — and the whole
/// stream — is byte-identical to a run where the panic never happened.
#[test]
fn transient_panic_is_retried_to_an_identical_stream() {
    autolock_obs::enable();
    let jobs = vec![mixed_jobs().swap_remove(0)]; // sat-easy

    let dir_a = scratch("panic_ref");
    let engine_a = JobEngine::new(EngineConfig::rooted(&dir_a, 1)).unwrap();
    engine_a.run(&jobs).unwrap();

    let dir_b = scratch("panic_once");
    let mut config = EngineConfig::rooted(&dir_b, 1);
    config.faults = FaultPlan::new(vec![FaultSpec::new("exec:sat-easy#1", 1, FaultKind::Panic)]);
    let engine_b = JobEngine::new(config).unwrap();
    let retries_before = autolock_obs::counter("service.exec_retries").value();
    let rows = engine_b.run(&jobs).unwrap();
    assert!(
        autolock_obs::counter("service.exec_retries").value() > retries_before,
        "the panic must consume a retry"
    );
    assert_eq!(rows[0].status, JobStatus::Ok);
    assert_eq!(
        rows[0].attempts, None,
        "retried rows carry no attempt count"
    );
    assert_eq!(
        fs::read(dir_a.join("rows.jsonl")).unwrap(),
        fs::read(dir_b.join("rows.jsonl")).unwrap()
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// A job that panics on every attempt exhausts its retry budget, is
/// quarantined, and ends as exactly one structured `error` row carrying
/// the attempt count — the batch and its other rows are unaffected.
#[test]
fn poison_job_is_quarantined_after_exhausting_retries() {
    autolock_obs::enable();
    let mut jobs = mixed_jobs();
    jobs.truncate(1); // sat-easy — the poison victim
    jobs.push(JobSpec {
        id: "healthy".into(),
        circuit: "svc-ok".into(),
        source: tiny_source(6),
        seed: 16,
        sequential: Default::default(),
        kind: JobKind::SatAttack {
            lock: LockSpec::Xor { key_len: 4 },
            timeout_ms: 600_000,
            max_propagations_per_solve: None,
            max_iterations: 2000,
        },
    });

    let dir = scratch("poison");
    let mut config = EngineConfig::rooted(&dir, 1);
    config.max_attempts = 3;
    config.faults = FaultPlan::new(vec![
        FaultSpec::new("exec:sat-easy#1", 1, FaultKind::Panic),
        FaultSpec::new("exec:sat-easy#2", 1, FaultKind::Panic),
        FaultSpec::new("exec:sat-easy#3", 1, FaultKind::Panic),
    ]);
    let engine = JobEngine::new(config).unwrap();
    let quarantined_before = autolock_obs::counter("service.jobs_quarantined").value();
    let rows = engine.run(&jobs).unwrap();

    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].status, JobStatus::Error);
    assert_eq!(rows[0].attempts, Some(3));
    assert!(rows[0].error.as_deref().unwrap_or("").contains("panic"));
    assert_eq!(
        rows[1].status,
        JobStatus::Ok,
        "batch survives the poison job"
    );
    assert!(autolock_obs::counter("service.jobs_quarantined").value() > quarantined_before);
    assert!(
        dir.join("quarantine").join("sat-easy.poison.json").exists(),
        "the poisoned spec must be parked for post-mortem"
    );

    let _ = fs::remove_dir_all(&dir);
}
