//! The job engine: sharded execution, JSONL streaming, resume.

use crate::job::{JobKind, JobRow, JobSpec, JobStatus, LockSpec};
use crate::registry::ModelRegistry;
use autolock::operators::{CrossoverKind, LocusCrossover, LocusMutation, MutationKind};
use autolock::{LockingGenotype, MuxLinkFitness};
use autolock_attacks::{
    netlist_fingerprint, MuxLinkAttack, MuxLinkConfig, SatAttack, SatAttackConfig,
};
use autolock_evo::{finish, GaConfig, GaState, GeneticAlgorithm, SelectionMethod};
use autolock_locking::DMuxLocking;
use autolock_netlist::{parse_bench, Netlist};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration of a [`JobEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The JSONL result stream. Created if absent; existing rows in it are
    /// treated as already-finished jobs (the resume protocol).
    pub out_path: PathBuf,
    /// Directory for per-job evolution checkpoints (created if absent).
    pub checkpoint_dir: PathBuf,
    /// Optional model-registry directory; when set, MuxLink jobs reuse
    /// cached trained models (bit-identical to retraining).
    pub registry_dir: Option<PathBuf>,
    /// Worker threads for the job fan-out (`0` = all cores, `1` = serial).
    /// Like every thread knob in this workspace it never changes results —
    /// callers typically pass the `AUTOLOCK_THREADS` value.
    pub threads: usize,
    /// Jobs dispatched per chunk. The engine holds at most one chunk of job
    /// results in memory and flushes rows to disk between chunks, so this
    /// bounds both peak memory and the worst-case work lost to a kill.
    pub chunk: usize,
}

impl EngineConfig {
    /// A configuration rooted at `dir`: rows in `dir/rows.jsonl`,
    /// checkpoints in `dir/checkpoints`, registry in `dir/registry`.
    pub fn rooted(dir: &Path, threads: usize) -> Self {
        EngineConfig {
            out_path: dir.join("rows.jsonl"),
            checkpoint_dir: dir.join("checkpoints"),
            registry_dir: Some(dir.join("registry")),
            threads,
            chunk: 8,
        }
    }
}

/// The persistent job engine. See the crate docs for the contract; the
/// short version: `run` is restartable at any kill point and the final
/// stream is bit-for-bit independent of where (or whether) it was killed.
#[derive(Debug)]
pub struct JobEngine {
    config: EngineConfig,
    registry: Option<ModelRegistry>,
}

impl JobEngine {
    /// Creates the engine, creating the output/checkpoint/registry
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(config: EngineConfig) -> io::Result<Self> {
        if let Some(parent) = config.out_path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::create_dir_all(&config.checkpoint_dir)?;
        let registry = match &config.registry_dir {
            Some(dir) => Some(ModelRegistry::open(dir)?),
            None => None,
        };
        Ok(JobEngine { config, registry })
    }

    /// The engine's model registry, when configured.
    pub fn registry(&self) -> Option<&ModelRegistry> {
        self.registry.as_ref()
    }

    /// Runs every job in `jobs` that does not already have a row in the
    /// output stream, appending one flushed JSONL row per finished job, and
    /// finally rewrites the stream atomically in `jobs` order.
    ///
    /// Job ids must be unique within the batch. Returns the rows in `jobs`
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the result stream. Per-job failures never
    /// fail the batch — they become [`JobStatus::Error`] rows.
    pub fn run(&self, jobs: &[JobSpec]) -> io::Result<Vec<JobRow>> {
        let _span = autolock_obs::span!("service.run");
        let mut done = read_rows(&self.config.out_path);
        autolock_obs::counter("service.jobs_resumed").add(done.len() as u64);

        // Compact the stream before appending: drops any torn final line a
        // kill may have left, and normalizes the already-done prefix to
        // batch order.
        let prefix: Vec<JobRow> = jobs
            .iter()
            .filter_map(|j| done.get(&j.id).cloned())
            .collect();
        write_rows_atomic(&self.config.out_path, &prefix)?;

        let pending: Vec<JobSpec> = jobs
            .iter()
            .filter(|j| !done.contains_key(&j.id))
            .cloned()
            .collect();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.config.out_path)?;
        let mut out = BufWriter::new(file);
        for chunk in pending.chunks(self.config.chunk.max(1)) {
            let rows = autolock_mlcore::parallel::pooled_map(self.config.threads, chunk, |spec| {
                self.run_job(spec)
            });
            for row in rows {
                let line = serde_json::to_string(&row).expect("JobRow serializes to JSON");
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                autolock_obs::counter("service.jobs_completed").incr();
                done.insert(row.job_id.clone(), row);
            }
        }
        drop(out);

        let ordered: Vec<JobRow> = jobs
            .iter()
            .map(|j| {
                done.get(&j.id)
                    .cloned()
                    .expect("every job has a row after the run loop")
            })
            .collect();
        write_rows_atomic(&self.config.out_path, &ordered)?;
        Ok(ordered)
    }

    /// Runs one job; failures become `error` rows, never panics/aborts of
    /// the batch.
    fn run_job(&self, spec: &JobSpec) -> JobRow {
        let _span = autolock_obs::span!("service.job");
        self.try_run(spec).unwrap_or_else(|message| JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            attack: spec.kind.label().to_string(),
            status: JobStatus::Error,
            key_len: spec.kind.key_len(),
            success: false,
            key_accuracy: None,
            iterations: 0,
            error: Some(message),
        })
    }

    fn try_run(&self, spec: &JobSpec) -> Result<JobRow, String> {
        let netlist =
            parse_bench(&spec.circuit, &spec.source).map_err(|e| format!("parse: {e}"))?;
        match &spec.kind {
            JobKind::SatAttack {
                lock,
                timeout_ms,
                max_propagations_per_solve,
                max_iterations,
            } => self.run_sat(
                spec,
                &netlist,
                *lock,
                *timeout_ms,
                *max_propagations_per_solve,
                *max_iterations,
            ),
            JobKind::MuxLinkAttack { lock, attack } => {
                self.run_muxlink(spec, &netlist, *lock, attack)
            }
            JobKind::Evolve {
                key_len,
                population_size,
                generations,
            } => self.run_evolve(spec, netlist, *key_len, *population_size, *generations),
        }
    }

    fn run_sat(
        &self,
        spec: &JobSpec,
        netlist: &Netlist,
        lock: LockSpec,
        timeout_ms: u64,
        max_propagations_per_solve: Option<u64>,
        max_iterations: usize,
    ) -> Result<JobRow, String> {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let locked = lock
            .apply(netlist, &mut rng)
            .map_err(|e| format!("lock: {e}"))?;
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations,
            timeout_ms: u128::from(timeout_ms),
            max_propagations_per_solve,
        });
        let outcome = attack.attack(&locked, netlist);
        Ok(JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            attack: "sat".to_string(),
            status: if outcome.gave_up {
                JobStatus::Timeout
            } else {
                JobStatus::Ok
            },
            key_len: outcome.key_len,
            success: outcome.success,
            key_accuracy: None,
            iterations: outcome.iterations as u64,
            error: None,
        })
    }

    fn run_muxlink(
        &self,
        spec: &JobSpec,
        netlist: &Netlist,
        lock: LockSpec,
        attack_config: &MuxLinkConfig,
    ) -> Result<JobRow, String> {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let locked = lock
            .apply(netlist, &mut rng)
            .map_err(|e| format!("lock: {e}"))?;
        // Job-level parallelism lives above the attack (the engine's worker
        // pool), so each attack runs serially — the thread-knob precedence
        // rule from `MuxLinkConfig::threads`.
        let attack = MuxLinkAttack::new(attack_config.clone().with_threads(1));
        let model = match &self.registry {
            Some(registry) => {
                let key = ModelRegistry::model_key(
                    netlist_fingerprint(locked.netlist()),
                    attack.config(),
                    spec.seed,
                );
                // On a hit, burn the one RNG draw `train_model` would have
                // consumed to derive its training stream, so the scoring
                // draws line up and the row is bit-identical either way.
                if let Some(model) = registry.load(&key) {
                    autolock_obs::counter("service.registry.hits").incr();
                    let _ = rng.next_u64();
                    model
                } else {
                    autolock_obs::counter("service.registry.misses").incr();
                    let model = attack.train_model(&locked, &mut rng);
                    if registry.store(&key, &model).is_err() {
                        autolock_obs::counter("service.registry.store_failures").incr();
                    }
                    model
                }
            }
            None => attack.train_model(&locked, &mut rng),
        };
        let (outcome, _scores) = attack.attack_with_model(&locked, &model, &mut rng);
        Ok(JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            attack: outcome.attack.clone(),
            status: JobStatus::Ok,
            key_len: outcome.key_len,
            success: true,
            key_accuracy: Some(outcome.key_accuracy),
            iterations: 0,
            error: None,
        })
    }

    /// The path of a job's GA checkpoint.
    pub fn checkpoint_path(&self, job_id: &str) -> PathBuf {
        self.config.checkpoint_dir.join(format!("{job_id}.ga.json"))
    }

    fn run_evolve(
        &self,
        spec: &JobSpec,
        netlist: Netlist,
        key_len: usize,
        population_size: usize,
        generations: usize,
    ) -> Result<JobRow, String> {
        if population_size < 2 {
            return Err("population size must be at least 2".to_string());
        }
        if key_len == 0 {
            return Err("key length must be at least 1".to_string());
        }
        let original = Arc::new(netlist);
        let ga = GeneticAlgorithm::new(GaConfig {
            generations,
            crossover_rate: 0.9,
            mutation_rate: 0.4,
            elitism: 2.min(population_size - 1),
            selection: SelectionMethod::Tournament { size: 3 },
            parallel: false,
            target_fitness: None,
            stagnation_limit: None,
        });
        let fitness = MuxLinkFitness::new(
            original.clone(),
            MuxLinkConfig::fast().with_threads(1),
            spec.seed,
            1,
        );
        let crossover = LocusCrossover::new(original.clone(), key_len, CrossoverKind::OnePoint);
        let mutation = LocusMutation::new(original.clone(), key_len, MutationKind::Composite);

        // Resume from the last generation checkpoint when one exists (its
        // `GaState` embeds the GA's RNG, so continuing is bit-identical to
        // never having stopped); otherwise seed the initial population.
        let ckpt = self.checkpoint_path(&spec.id);
        let mut state: GaState<LockingGenotype> = match load_checkpoint(&ckpt) {
            Some(state) => {
                autolock_obs::counter("service.evolve_resumes").incr();
                state
            }
            None => {
                let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
                let locking = DMuxLocking::default();
                let mut population = Vec::with_capacity(population_size);
                for _ in 0..population_size {
                    population.push(
                        locking
                            .select_loci(&original, key_len, &mut rng)
                            .map_err(|e| format!("lock: {e}"))?,
                    );
                }
                ga.init_state(population, &fitness, rng)
            }
        };
        write_checkpoint(&ckpt, &state)?;
        while ga.step(&mut state, &fitness, &crossover, &mutation) {
            write_checkpoint(&ckpt, &state)?;
        }
        let result = finish(state);
        Ok(JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            attack: "evolve".to_string(),
            status: JobStatus::Ok,
            key_len,
            success: true,
            key_accuracy: Some(1.0 - result.best_fitness),
            iterations: result.history.len().saturating_sub(1) as u64,
            error: None,
        })
    }
}

/// Reads the resumable rows of an existing stream: one JSONL row per line,
/// keyed by job id. Unparseable lines (at most the torn tail a kill left)
/// are skipped; duplicate ids keep the first occurrence.
fn read_rows(path: &Path) -> HashMap<String, JobRow> {
    let mut rows = HashMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return rows;
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(row) = serde_json::from_str::<JobRow>(line) {
            rows.entry(row.job_id.clone()).or_insert(row);
        }
    }
    rows
}

/// Atomically replaces `path` with the given rows, one JSON object per
/// line.
fn write_rows_atomic(path: &Path, rows: &[JobRow]) -> io::Result<()> {
    let mut text = String::new();
    for row in rows {
        text.push_str(&serde_json::to_string(row).expect("JobRow serializes to JSON"));
        text.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

fn load_checkpoint(path: &Path) -> Option<GaState<LockingGenotype>> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_checkpoint(path: &Path, state: &GaState<LockingGenotype>) -> Result<(), String> {
    let json = serde_json::to_string(state).expect("GaState serializes to JSON");
    let tmp = path.with_extension("ga.json.tmp");
    fs::write(&tmp, json).map_err(|e| format!("checkpoint write: {e}"))?;
    fs::rename(&tmp, path).map_err(|e| format!("checkpoint rename: {e}"))
}
