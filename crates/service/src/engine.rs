//! The job engine: sharded execution, JSONL streaming, resume, retries.

use crate::fault::{FaultKind, FaultPlan};
use crate::job::{JobKind, JobRow, JobSpec, JobStatus, LockSpec};
use crate::registry::{ModelRegistry, RegistryLookup};
use crate::resumable::{EvolveJob, IslandEvolveJob};
use crate::store::{CheckpointStore, StoreRead};
use autolock_attacks::{
    netlist_fingerprint, MuxLinkAttack, MuxLinkConfig, ResumableSatAttack, SatAttack,
    SatAttackConfig,
};
use autolock_evo::Resumable;
use autolock_netlist::ingest::{self, CircuitFormat, IngestOptions, SeqResolution};
use autolock_netlist::Netlist;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::fs;
use std::io::{self, BufWriter, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Configuration of a [`JobEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The JSONL result stream. Created if absent; existing rows in it are
    /// treated as already-finished jobs (the resume protocol).
    pub out_path: PathBuf,
    /// Directory for per-job checkpoints (created if absent): GA generation
    /// checkpoints and mid-solve SAT checkpoints, all framed records.
    pub checkpoint_dir: PathBuf,
    /// Where corrupt records and retry-exhausted job specs are moved for
    /// post-mortem (created if absent). Nothing in it is ever read back.
    pub quarantine_dir: PathBuf,
    /// Optional model-registry directory; when set, MuxLink jobs reuse
    /// cached trained models (bit-identical to retraining).
    pub registry_dir: Option<PathBuf>,
    /// Worker threads for the job fan-out (`0` = all cores, `1` = serial).
    /// Like every thread knob in this workspace it never changes results —
    /// callers typically pass the `AUTOLOCK_THREADS` value.
    pub threads: usize,
    /// Jobs dispatched per chunk. The engine holds at most one chunk of job
    /// results in memory and flushes rows to disk between chunks, so this
    /// bounds both peak memory and the worst-case work lost to a kill.
    pub chunk: usize,
    /// Execution attempts per job before it is declared poisoned: panicking
    /// or I/O-failing jobs are retried up to this many times total, then
    /// quarantined with a structured `error` row. Deterministic failures
    /// (parse/lock/parameter errors) are never retried. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Mid-solve SAT checkpoint granule: when set, SAT jobs pause their
    /// active solver call every this-many conflicts and persist the full
    /// attack state, so a kill mid-solve resumes the search (bit-identical)
    /// instead of restarting the job. `None` disables SAT checkpointing.
    pub sat_step_conflicts: Option<u64>,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] in
    /// production; chaos tests arm torn writes, corrupt bytes, read errors
    /// and worker panics at named seams.
    pub faults: Arc<FaultPlan>,
}

impl EngineConfig {
    /// A configuration rooted at `dir`: rows in `dir/rows.jsonl`,
    /// checkpoints in `dir/checkpoints`, quarantine in `dir/quarantine`,
    /// registry in `dir/registry`; 3 attempts per job and a 20k-conflict
    /// SAT checkpoint granule.
    pub fn rooted(dir: &Path, threads: usize) -> Self {
        EngineConfig {
            out_path: dir.join("rows.jsonl"),
            checkpoint_dir: dir.join("checkpoints"),
            quarantine_dir: dir.join("quarantine"),
            registry_dir: Some(dir.join("registry")),
            threads,
            chunk: 8,
            max_attempts: 3,
            sat_step_conflicts: Some(20_000),
            faults: FaultPlan::none(),
        }
    }
}

/// A job failure, classified for the retry loop.
struct JobError {
    message: String,
    /// `true` for failures worth retrying (I/O errors, and panics are
    /// treated the same way by the caller); `false` for deterministic
    /// failures (parse/lock/parameter) that would fail identically again.
    poison: bool,
}

impl JobError {
    fn fatal(message: String) -> Self {
        JobError {
            message,
            poison: false,
        }
    }

    fn io(e: io::Error) -> Self {
        JobError {
            message: format!("io: {e}"),
            poison: true,
        }
    }
}

/// The persistence identity of one resumable job: its checkpoint name in
/// the store and the counters its resume/checkpoint events report to.
struct ResumeSite {
    name: String,
    resume_counter: &'static str,
    checkpoint_counter: &'static str,
}

/// The persistent job engine. See the crate docs for the contract; the
/// short version: `run` is restartable at any kill point and the final
/// stream is bit-for-bit independent of where (or whether) it was killed.
#[derive(Debug)]
pub struct JobEngine {
    config: EngineConfig,
    store: CheckpointStore,
    registry: Option<ModelRegistry>,
}

impl JobEngine {
    /// Creates the engine, creating the output/checkpoint/quarantine/
    /// registry directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(config: EngineConfig) -> io::Result<Self> {
        if let Some(parent) = config.out_path.parent() {
            fs::create_dir_all(parent)?;
        }
        let store = CheckpointStore::open(
            &config.checkpoint_dir,
            &config.quarantine_dir,
            config.faults.clone(),
        )?;
        let registry = match &config.registry_dir {
            Some(dir) => Some(ModelRegistry::open_with_faults(dir, config.faults.clone())?),
            None => None,
        };
        Ok(JobEngine {
            config,
            store,
            registry,
        })
    }

    /// The engine's model registry, when configured.
    pub fn registry(&self) -> Option<&ModelRegistry> {
        self.registry.as_ref()
    }

    /// The engine's checkpoint store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Runs every job in `jobs` that does not already have a row in the
    /// output stream, appending one flushed JSONL row per finished job, and
    /// finally rewrites the stream atomically in `jobs` order.
    ///
    /// Job ids must be unique within the batch. Returns the rows in `jobs`
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on the result stream. Per-job failures never
    /// fail the batch — they become [`JobStatus::Error`] rows (after the
    /// configured retries, for panics and I/O errors).
    pub fn run(&self, jobs: &[JobSpec]) -> io::Result<Vec<JobRow>> {
        let _span = autolock_obs::span!("service.run");
        let mut done = read_rows(&self.config.out_path, &self.config.faults);
        autolock_obs::counter("service.jobs_resumed").add(done.len() as u64);

        // Compact the stream before appending: drops any torn final line a
        // kill may have left, and normalizes the already-done prefix to
        // batch order.
        let prefix: Vec<JobRow> = jobs
            .iter()
            .filter_map(|j| done.get(&j.id).cloned())
            .collect();
        write_rows_atomic(
            &self.config.out_path,
            &prefix,
            &self.config.faults,
            "rows.compact",
        )?;

        let pending: Vec<JobSpec> = jobs
            .iter()
            .filter(|j| !done.contains_key(&j.id))
            .cloned()
            .collect();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.config.out_path)?;
        let mut out = BufWriter::new(file);
        for chunk in pending.chunks(self.config.chunk.max(1)) {
            let rows = autolock_mlcore::parallel::pooled_map(self.config.threads, chunk, |spec| {
                self.run_job(spec)
            });
            for row in rows {
                let mut line = serde_json::to_string(&row).expect("JobRow serializes to JSON");
                // Injected stream faults damage the line the way a kill
                // mid-append (torn) or a bad disk (corrupt) would. Byte 0 is
                // flipped for corruption so the line can never parse as a
                // different valid row.
                match self
                    .config
                    .faults
                    .check(&format!("rows.append:{}", row.job_id))
                {
                    Some(FaultKind::TornWrite) => line.truncate(line.len() / 2),
                    Some(FaultKind::CorruptBytes) => line.replace_range(0..1, "z"),
                    _ => {}
                }
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
                out.flush()?;
                autolock_obs::counter("service.jobs_completed").incr();
                done.insert(row.job_id.clone(), row);
            }
        }
        drop(out);

        let ordered: Vec<JobRow> = jobs
            .iter()
            .map(|j| {
                done.get(&j.id)
                    .cloned()
                    .expect("every job has a row after the run loop")
            })
            .collect();
        write_rows_atomic(
            &self.config.out_path,
            &ordered,
            &self.config.faults,
            "rows.finalize",
        )?;
        Ok(ordered)
    }

    /// Runs one job through the retry loop; failures become `error` rows,
    /// never panics/aborts of the batch. Panics and I/O errors are retried
    /// up to [`EngineConfig::max_attempts`] times; a job that exhausts its
    /// attempts is *poisoned*: its spec is quarantined and its row carries
    /// the attempt count. Deterministic failures are not retried and their
    /// rows carry no attempt count, so transient faults never change bytes.
    fn run_job(&self, spec: &JobSpec) -> JobRow {
        let _span = autolock_obs::span!("service.job");
        let max_attempts = u64::from(self.config.max_attempts.max(1));
        let mut attempt = 0u64;
        loop {
            attempt += 1;
            let result = catch_unwind(AssertUnwindSafe(|| {
                self.config
                    .faults
                    .check_panic(&format!("exec:{}#{attempt}", spec.id));
                self.try_run(spec)
            }));
            let message = match result {
                Ok(Ok(row)) => return row,
                Ok(Err(err)) if !err.poison => return self.error_row(spec, None, err.message),
                Ok(Err(err)) => err.message,
                Err(panic) => format!("panic: {}", panic_message(panic.as_ref())),
            };
            if attempt < max_attempts {
                autolock_obs::counter("service.exec_retries").incr();
                continue;
            }
            // Poisoned: park the spec for post-mortem and report a
            // structured row. The quarantined copy is evidence, not state —
            // nothing ever reads it back.
            autolock_obs::counter("service.jobs_quarantined").incr();
            let spec_json = serde_json::to_string(spec).expect("JobSpec serializes to JSON");
            let _ = self
                .store
                .quarantine_bytes(&format!("{}.poison.json", spec.id), spec_json.as_bytes());
            return self.error_row(spec, Some(attempt), message);
        }
    }

    fn error_row(&self, spec: &JobSpec, attempts: Option<u64>, message: String) -> JobRow {
        JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            format: source_format(spec),
            attack: spec.kind.label().to_string(),
            status: JobStatus::Error,
            key_len: spec.kind.key_len(),
            success: false,
            key_accuracy: None,
            iterations: 0,
            attempts,
            error: Some(message),
        }
    }

    fn try_run(&self, spec: &JobSpec) -> Result<JobRow, JobError> {
        let opts = IngestOptions {
            sequential: spec.sequential,
            ..IngestOptions::default()
        };
        let ingested = ingest::parse_auto(&spec.circuit, &spec.source, &opts)
            .map_err(|e| JobError::fatal(format!("parse: {e}")))?;
        autolock_obs::counter(match ingested.format {
            CircuitFormat::Bench => "service.ingest.bench",
            CircuitFormat::Aiger => "service.ingest.aiger",
        })
        .incr();
        match ingested.resolution {
            SeqResolution::Combinational => {}
            SeqResolution::Cut => autolock_obs::counter("service.ingest.cut").incr(),
            SeqResolution::Unrolled { .. } => {
                autolock_obs::counter("service.ingest.unrolled").incr()
            }
        }
        let netlist = ingested.netlist;
        match &spec.kind {
            JobKind::SatAttack {
                lock,
                timeout_ms,
                max_propagations_per_solve,
                max_iterations,
            } => self.run_sat(
                spec,
                &netlist,
                *lock,
                *timeout_ms,
                *max_propagations_per_solve,
                *max_iterations,
            ),
            JobKind::MuxLinkAttack { lock, attack } => {
                self.run_muxlink(spec, &netlist, *lock, attack)
            }
            JobKind::Evolve {
                key_len,
                population_size,
                generations,
            } => self.run_evolve(spec, netlist, *key_len, *population_size, *generations),
            JobKind::EvolveIslands { .. } => self.run_evolve_islands(spec, netlist),
        }
    }

    /// Drives any [`Resumable`] job through the engine's persistence
    /// protocol: restore the last checkpoint when a valid one exists (a
    /// parseable-but-invalid payload is quarantined and counted like any
    /// other corruption), persist a fresh checkpoint after init/restore and
    /// after every step, and finish. Because every implementation's
    /// continued run is bit-identical to an uninterrupted one, the produced
    /// output is independent of where (or whether) the previous process was
    /// killed.
    fn run_resumable<R: Resumable>(
        &self,
        job: &R,
        site: &ResumeSite,
    ) -> Result<R::Output, JobError> {
        let mut state = match self.load_resumable_checkpoint(job, &site.name)? {
            Some(state) => {
                autolock_obs::counter(site.resume_counter).incr();
                state
            }
            None => job.init_state(),
        };
        self.write_resumable_checkpoint(job, &state, site)?;
        while job.step(&mut state) {
            self.write_resumable_checkpoint(job, &state, site)?;
        }
        Ok(job.finish(state))
    }

    /// Reads and revives a [`Resumable`] checkpoint. `Ok(None)` when the job
    /// must start fresh: no checkpoint, a torn/corrupt frame (already
    /// quarantined by the store), or an intact frame whose payload fails to
    /// parse or to [`Resumable::restore`] — which is quarantined here, so
    /// corruption costs recomputation, never a panic and never a wrong row.
    fn load_resumable_checkpoint<R: Resumable>(
        &self,
        job: &R,
        name: &str,
    ) -> Result<Option<R::State>, JobError> {
        let payload = match self.store.read(name).map_err(JobError::io)? {
            StoreRead::Ok(payload) => payload,
            StoreRead::Absent | StoreRead::Corrupt => return Ok(None),
        };
        let revived = std::str::from_utf8(&payload)
            .ok()
            .and_then(|text| serde_json::from_str::<R::Checkpoint>(text).ok())
            .and_then(|ckpt| job.restore(ckpt).ok());
        match revived {
            Some(state) => Ok(Some(state)),
            None => {
                autolock_obs::counter("service.store.corrupt").incr();
                let _ = self
                    .store
                    .quarantine_bytes(&format!("{name}.payload"), &payload);
                let _ = self.store.remove(name);
                Ok(None)
            }
        }
    }

    fn write_resumable_checkpoint<R: Resumable>(
        &self,
        job: &R,
        state: &R::State,
        site: &ResumeSite,
    ) -> Result<(), JobError> {
        let ckpt = job.checkpoint(state);
        let payload = serde_json::to_string(&ckpt).expect("checkpoint serializes to JSON");
        self.store
            .write(&site.name, payload.as_bytes())
            .map_err(JobError::io)?;
        autolock_obs::counter(site.checkpoint_counter).incr();
        Ok(())
    }

    /// The store name of a job's mid-solve SAT checkpoint.
    fn sat_checkpoint_name(job_id: &str) -> String {
        format!("{job_id}.sat.json")
    }

    fn run_sat(
        &self,
        spec: &JobSpec,
        netlist: &Netlist,
        lock: LockSpec,
        timeout_ms: u64,
        max_propagations_per_solve: Option<u64>,
        max_iterations: usize,
    ) -> Result<JobRow, JobError> {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let locked = lock
            .apply(netlist, &mut rng)
            .map_err(|e| JobError::fatal(format!("lock: {e}")))?;
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations,
            timeout_ms: u128::from(timeout_ms),
            max_propagations_per_solve,
            checkpoint_conflicts: self.config.sat_step_conflicts,
        });
        let outcome = if self.config.sat_step_conflicts.is_some() {
            // Persist the full attack state at every step boundary: after
            // each DIP/oracle exchange and — thanks to the conflict granule
            // — *inside* long miter/key solves, so a SIGKILL at any point
            // loses at most one granule of search.
            let job = ResumableSatAttack::new(&attack, &locked, netlist);
            self.run_resumable(
                &job,
                &ResumeSite {
                    name: Self::sat_checkpoint_name(&spec.id),
                    resume_counter: "service.sat_resumes",
                    checkpoint_counter: "service.sat_checkpoints",
                },
            )?
        } else {
            attack.attack(&locked, netlist)
        };
        Ok(JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            format: source_format(spec),
            attack: "sat".to_string(),
            status: if outcome.gave_up {
                JobStatus::Timeout
            } else {
                JobStatus::Ok
            },
            key_len: outcome.key_len,
            success: outcome.success,
            key_accuracy: None,
            iterations: outcome.iterations as u64,
            attempts: None,
            error: None,
        })
    }

    fn run_muxlink(
        &self,
        spec: &JobSpec,
        netlist: &Netlist,
        lock: LockSpec,
        attack_config: &MuxLinkConfig,
    ) -> Result<JobRow, JobError> {
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let locked = lock
            .apply(netlist, &mut rng)
            .map_err(|e| JobError::fatal(format!("lock: {e}")))?;
        // Job-level parallelism lives above the attack (the engine's worker
        // pool), so each attack runs serially — the thread-knob precedence
        // rule from `MuxLinkConfig::threads`.
        let attack = MuxLinkAttack::new(attack_config.clone().with_threads(1));
        let model = match &self.registry {
            Some(registry) => {
                let key = ModelRegistry::model_key(
                    netlist_fingerprint(locked.netlist()),
                    attack.config(),
                    spec.seed,
                );
                // On a hit, burn the one RNG draw `train_model` would have
                // consumed to derive its training stream, so the scoring
                // draws line up and the row is bit-identical either way. A
                // corrupt entry is quarantined by `load_checked` and then
                // trains exactly like a miss — same draws, same row.
                match registry.load_checked(&key) {
                    RegistryLookup::Hit(model) => {
                        let _ = rng.next_u64();
                        *model
                    }
                    RegistryLookup::Miss | RegistryLookup::Corrupt => {
                        let model = attack.train_model(&locked, &mut rng);
                        if registry.store(&key, &model).is_err() {
                            autolock_obs::counter("service.registry.store_failures").incr();
                        }
                        model
                    }
                }
            }
            None => attack.train_model(&locked, &mut rng),
        };
        let (outcome, _scores) = attack.attack_with_model(&locked, &model, &mut rng);
        Ok(JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            format: source_format(spec),
            attack: outcome.attack.clone(),
            status: JobStatus::Ok,
            key_len: outcome.key_len,
            success: true,
            key_accuracy: Some(outcome.key_accuracy),
            iterations: 0,
            attempts: None,
            error: None,
        })
    }

    /// The store name of a job's GA checkpoint.
    fn ga_checkpoint_name(job_id: &str) -> String {
        format!("{job_id}.ga.json")
    }

    /// The path of a job's GA checkpoint.
    pub fn checkpoint_path(&self, job_id: &str) -> PathBuf {
        self.store.path(&Self::ga_checkpoint_name(job_id))
    }

    /// The store name of a job's island-GA checkpoint. Public so external
    /// drivers (the E14 bench experiment) can pre-seed a checkpoint through
    /// [`JobEngine::store`] exactly where the engine will look for it.
    pub fn island_checkpoint_name(job_id: &str) -> String {
        format!("{job_id}.iga.json")
    }

    /// The path of a job's island-GA checkpoint.
    pub fn island_checkpoint_path(&self, job_id: &str) -> PathBuf {
        self.store.path(&Self::island_checkpoint_name(job_id))
    }

    /// Runs a classic single-population evolve job through the
    /// [`Resumable`] protocol. The checkpoint (`{id}.ga.json`) embeds the
    /// GA's RNG, so a resumed run is bit-identical to never having stopped;
    /// a torn or corrupt checkpoint is quarantined and the GA restarts from
    /// its seed — recomputation, not a panic, and the same final row.
    fn run_evolve(
        &self,
        spec: &JobSpec,
        netlist: Netlist,
        key_len: usize,
        population_size: usize,
        generations: usize,
    ) -> Result<JobRow, JobError> {
        let job = EvolveJob::from_parts(netlist, spec.seed, key_len, population_size, generations)
            .map_err(JobError::fatal)?;
        let result = self.run_resumable(
            &job.resumable(),
            &ResumeSite {
                name: Self::ga_checkpoint_name(&spec.id),
                resume_counter: "service.evolve_resumes",
                checkpoint_counter: "service.evolve_checkpoints",
            },
        )?;
        Ok(self.evolve_row(spec, key_len, &result))
    }

    /// Runs an island-model evolve job ([`JobKind::EvolveIslands`]) through
    /// the [`Resumable`] protocol, checkpointing under `{id}.iga.json`.
    /// Islands run serially inside the job (the engine's worker pool is the
    /// parallelism level, per the workspace thread-knob precedence rule);
    /// results are thread-count invariant either way.
    fn run_evolve_islands(&self, spec: &JobSpec, netlist: Netlist) -> Result<JobRow, JobError> {
        let job = IslandEvolveJob::from_spec_netlist(spec, netlist, 1).map_err(JobError::fatal)?;
        let key_len = spec.kind.key_len();
        let result = self.run_resumable(
            &job.resumable(),
            &ResumeSite {
                name: Self::island_checkpoint_name(&spec.id),
                resume_counter: "service.evolve_resumes",
                checkpoint_counter: "service.evolve_checkpoints",
            },
        )?;
        Ok(self.evolve_row(spec, key_len, &result))
    }

    /// The row both evolve kinds produce: `key_accuracy` is the attack
    /// accuracy of the best genotype (1 − fitness), `iterations` the number
    /// of generations actually evolved.
    fn evolve_row(
        &self,
        spec: &JobSpec,
        key_len: usize,
        result: &crate::resumable::EvolveResult,
    ) -> JobRow {
        JobRow {
            job_id: spec.id.clone(),
            circuit: spec.circuit.clone(),
            format: source_format(spec),
            attack: "evolve".to_string(),
            status: JobStatus::Ok,
            key_len,
            success: true,
            key_accuracy: Some(1.0 - result.best_fitness),
            iterations: result.history.len().saturating_sub(1) as u64,
            attempts: None,
            error: None,
        }
    }
}

/// The `format` column of a spec's rows: the content sniff is exactly the
/// detection [`ingest::parse_auto`] applies, and it works even for sources
/// that later fail to parse (error rows report a format too).
fn source_format(spec: &JobSpec) -> String {
    CircuitFormat::sniff(&spec.source).label().to_string()
}

/// Best-effort human-readable payload of a caught panic.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Reads the resumable rows of an existing stream: one JSONL row per line,
/// keyed by job id. Unparseable lines (torn tails and corrupt lines a kill
/// or bad disk left) are skipped — their jobs simply rerun; duplicate ids
/// keep the first occurrence. An unreadable stream (injected `rows.read`
/// fault) degrades to an empty one: every job reruns and the stream heals.
fn read_rows(path: &Path, faults: &FaultPlan) -> HashMap<String, JobRow> {
    let mut rows = HashMap::new();
    if faults.check("rows.read") == Some(FaultKind::ReadError) {
        return rows;
    }
    let Ok(text) = fs::read_to_string(path) else {
        return rows;
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(row) = serde_json::from_str::<JobRow>(line) {
            rows.entry(row.job_id.clone()).or_insert(row);
        }
    }
    rows
}

/// Atomically replaces `path` with the given rows, one JSON object per
/// line. An injected [`FaultKind::TornWrite`] at `site` simulates a kill
/// *before* the atomic rename: the rewrite silently does not happen and
/// the previous stream survives — exactly the guarantee the temp+rename
/// protocol provides under a real kill.
fn write_rows_atomic(
    path: &Path,
    rows: &[JobRow],
    faults: &FaultPlan,
    site: &str,
) -> io::Result<()> {
    if faults.check(site) == Some(FaultKind::TornWrite) {
        return Ok(());
    }
    let mut text = String::new();
    for row in rows {
        text.push_str(&serde_json::to_string(row).expect("JobRow serializes to JSON"));
        text.push('\n');
    }
    let tmp = path.with_extension("jsonl.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}
