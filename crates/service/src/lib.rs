//! Attack-as-a-service job engine.
//!
//! The experiment drivers in `autolock_bench` run one experiment to
//! completion in one process. This crate turns the same building blocks into
//! a *persistent* service primitive: a batch of lock/attack/evolution jobs
//! that
//!
//! * shards across `AUTOLOCK_THREADS` workers through the workspace's
//!   order-preserving [`autolock_mlcore::parallel::pooled_map`], in bounded
//!   chunks so only one chunk of job state is in flight at a time,
//! * streams one JSONL [`JobRow`] per finished job to disk (flushed per
//!   row, so a `SIGKILL` loses at most the in-flight chunk),
//! * persists per-generation [`autolock_evo::GaState`] checkpoints for
//!   evolution jobs and serde-serialized [`autolock_attacks::TrainedLinkModel`]s
//!   in a disk-backed [`ModelRegistry`] keyed by circuit + config + seed
//!   fingerprints,
//! * resumes: re-running the same job batch against the same output
//!   directory skips every job that already has a row, continues evolution
//!   jobs from their last generation checkpoint, and reuses registry
//!   models — and the final output is **bit-for-bit identical** to an
//!   uninterrupted run (pinned by this crate's tests and the CI
//!   `service-smoke` step).
//!
//! Rows carry no wall-clock fields; per-job determinism comes from each
//! job's own seed, so neither thread count nor kill/resume boundaries can
//! change the output. The only nondeterministic knob is a wall-clock
//! `timeout_ms` on SAT jobs near its threshold — reproducible induced
//! timeouts use the deterministic propagation cap instead (see
//! [`autolock_attacks::SatAttackConfig::max_propagations_per_solve`]).
//!
//! # Fault tolerance
//!
//! The engine is built to survive — and be *tested against* — the failure
//! modes a long-running attack service actually meets (the full matrix
//! lives in this crate's `README.md`):
//!
//! * **Mid-solve SAT checkpointing** — SAT jobs persist their complete
//!   solver state (clause database, trail, activities, budgets) every
//!   [`EngineConfig::sat_step_conflicts`] conflicts, so a `SIGKILL` inside
//!   a long miter solve resumes the *search*, bit-identically, instead of
//!   restarting the job.
//! * **Crash-consistent stores** — every checkpoint and registry entry is
//!   a length+checksum-framed record written via temp-file + atomic rename
//!   ([`CheckpointStore`]). Torn or corrupt records are detected on read,
//!   counted, moved to a quarantine directory, and recomputed — never
//!   silently used, never a panic.
//! * **Poison-job isolation** — a job that panics or hits I/O errors is
//!   retried up to [`EngineConfig::max_attempts`] times, then quarantined
//!   with a structured [`JobStatus::Error`] row carrying its attempt
//!   count; the rest of the batch is unaffected.
//! * **Deterministic fault injection** — a seeded [`FaultPlan`] threads
//!   through every I/O and execution seam, so chaos tests can inject torn
//!   writes, corrupt bytes, read errors and worker panics at exact points
//!   and assert the final stream is byte-identical to a fault-free run.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod engine;
mod fault;
mod job;
mod registry;
mod resumable;
mod store;

pub use engine::{EngineConfig, JobEngine};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use job::{
    jobs_from_dir, DirJobConfig, DirJobKinds, JobKind, JobRow, JobSpec, JobStatus, LockSpec,
};
pub use registry::{ModelRegistry, RegistryLookup};
pub use resumable::{run_fresh, EvolveJob, EvolveResult, IslandEvolveJob};
pub use store::{CheckpointStore, StoreRead};
