//! Deterministic fault injection for the job engine.
//!
//! A [`FaultPlan`] is a seeded list of *(site, occurrence, kind)* triples
//! threaded through every I/O and execution seam of the engine. Sites are
//! fully qualified strings (`exec:{job_id}#{attempt}`,
//! `store.write:{name}`, `rows.append:{job_id}`, …) and occurrences are
//! 1-based per-site counters, so a plan fires the same faults at the same
//! points regardless of worker threading — every site name embeds the job
//! or file it belongs to, and each is touched by exactly one worker.
//!
//! The engine consults the plan at each seam and, when a fault is armed for
//! the current occurrence, *simulates* the failure: truncating the bytes it
//! was about to write, corrupting them, returning an I/O error, or
//! panicking the worker. Production engines carry [`FaultPlan::none`],
//! which is a no-op at every seam.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// What kind of failure to simulate at a seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A kill mid-write: only a prefix of the bytes reaches the file.
    TornWrite,
    /// Silent media corruption: the bytes are damaged before they land.
    CorruptBytes,
    /// The read fails with an I/O error.
    ReadError,
    /// The worker thread panics at this point.
    Panic,
}

/// One armed fault: fire `kind` at the `occurrence`-th (1-based) visit of
/// `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fully qualified seam name, e.g. `store.write:job1.sat.json`.
    pub site: String,
    /// 1-based visit index at which the fault fires.
    pub occurrence: u64,
    /// The failure to simulate.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Convenience constructor.
    pub fn new(site: impl Into<String>, occurrence: u64, kind: FaultKind) -> Self {
        FaultSpec {
            site: site.into(),
            occurrence,
            kind,
        }
    }
}

/// A deterministic schedule of injected faults. Cheap to share
/// (`Arc<FaultPlan>`); interior mutability tracks per-site visit counts.
#[derive(Debug, Default)]
pub struct FaultPlan {
    armed: HashMap<String, Vec<(u64, FaultKind)>>,
    seen: Mutex<HashMap<String, u64>>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// The empty plan: every check is a no-op.
    pub fn none() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    /// Builds a plan from explicit fault specs.
    pub fn new(specs: Vec<FaultSpec>) -> Arc<FaultPlan> {
        let mut armed: HashMap<String, Vec<(u64, FaultKind)>> = HashMap::new();
        for spec in specs {
            armed
                .entry(spec.site)
                .or_default()
                .push((spec.occurrence, spec.kind));
        }
        Arc::new(FaultPlan {
            armed,
            seen: Mutex::new(HashMap::new()),
            fired: AtomicU64::new(0),
        })
    }

    /// `true` when no faults are armed (the production fast path).
    pub fn is_empty(&self) -> bool {
        self.armed.is_empty()
    }

    /// Number of faults that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// Records a visit to `site` and returns the armed fault for this
    /// occurrence, if any. Publishes `service.faults_injected` on fire.
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        if self.armed.is_empty() {
            return None;
        }
        let armed = self.armed.get(site)?;
        let occurrence = {
            let mut seen = self.seen.lock().expect("fault-plan counter lock");
            let n = seen.entry(site.to_string()).or_insert(0);
            *n += 1;
            *n
        };
        let kind = armed
            .iter()
            .find(|(at, _)| *at == occurrence)
            .map(|(_, kind)| *kind)?;
        self.fired.fetch_add(1, Ordering::SeqCst);
        autolock_obs::counter("service.faults_injected").incr();
        Some(kind)
    }

    /// Like [`FaultPlan::check`] for [`FaultKind::Panic`]-only sites:
    /// panics when a panic fault is armed here, otherwise does nothing.
    pub fn check_panic(&self, site: &str) {
        if self.check(site) == Some(FaultKind::Panic) {
            panic!("injected fault: worker panic at {site}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.check("store.write:x"), None);
        plan.check_panic("exec:a#1");
        assert_eq!(plan.fired(), 0);
    }

    #[test]
    fn fires_at_the_armed_occurrence_only() {
        let plan = FaultPlan::new(vec![
            FaultSpec::new("store.write:a", 2, FaultKind::TornWrite),
            FaultSpec::new("store.read:a", 1, FaultKind::ReadError),
        ]);
        assert_eq!(plan.check("store.write:a"), None); // occurrence 1
        assert_eq!(plan.check("store.write:a"), Some(FaultKind::TornWrite));
        assert_eq!(plan.check("store.write:a"), None); // occurrence 3
        assert_eq!(plan.check("store.read:a"), Some(FaultKind::ReadError));
        assert_eq!(plan.check("store.read:b"), None); // different site
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_faults_panic() {
        let plan = FaultPlan::new(vec![FaultSpec::new("exec:j#1", 1, FaultKind::Panic)]);
        plan.check_panic("exec:j#1");
    }

    #[test]
    fn sites_count_independently() {
        let plan = FaultPlan::new(vec![
            FaultSpec::new("a", 1, FaultKind::CorruptBytes),
            FaultSpec::new("b", 1, FaultKind::Panic),
        ]);
        assert_eq!(plan.check("b"), Some(FaultKind::Panic));
        assert_eq!(plan.check("a"), Some(FaultKind::CorruptBytes));
        assert_eq!(plan.fired(), 2);
    }
}
