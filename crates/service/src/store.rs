//! Crash-consistent checkpoint storage.
//!
//! Every record a [`CheckpointStore`] writes is *framed*: a magic tag, the
//! payload length and an FNV-1a checksum precede the payload, and the frame
//! lands via write-to-temp + atomic rename. On read, any framing violation
//! — torn tail, flipped bytes, wrong length, stray file — is detected,
//! counted (`service.store.corrupt`), and the offending file is moved into
//! a quarantine directory (`service.store.quarantined`) so the caller can
//! restart from its last good state. A corrupt checkpoint therefore costs
//! recomputation, never a panic and never a wrong result.

use crate::fault::{FaultKind, FaultPlan};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Frame magic: identifies a well-formed store record.
const MAGIC: &[u8; 8] = b"ALCKPT01";

/// FNV-1a over the payload — cheap, dependency-free, and plenty to catch
/// torn writes and bit flips (this is corruption *detection*, not crypto).
fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in payload {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames a payload: magic + LE length + LE checksum + payload.
pub(crate) fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Unframes a record; `None` on any violation (bad magic, short header,
/// length mismatch — including trailing garbage — or checksum mismatch).
pub(crate) fn decode_record(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 24 || &bytes[..8] != MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    let sum = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    let payload = &bytes[24..];
    if payload.len() != len || checksum(payload) != sum {
        return None;
    }
    Some(payload.to_vec())
}

/// Result of a [`CheckpointStore::read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreRead {
    /// The record decoded cleanly; here is its payload.
    Ok(Vec<u8>),
    /// No record with that name exists.
    Absent,
    /// A file existed but its framing was violated; it has been moved into
    /// the quarantine directory. Treat as absent and recompute.
    Corrupt,
}

/// A directory of framed, atomically-replaced records with corrupt-record
/// quarantine. Used for SAT/GA job checkpoints and (via
/// [`crate::ModelRegistry`]) cached models.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    quarantine: PathBuf,
    faults: Arc<FaultPlan>,
}

impl CheckpointStore {
    /// Opens (creating as needed) a store rooted at `dir` with its
    /// quarantine at `quarantine`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path, quarantine: &Path, faults: Arc<FaultPlan>) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        fs::create_dir_all(quarantine)?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            quarantine: quarantine.to_path_buf(),
            faults,
        })
    }

    /// The on-disk path of a record.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// `true` when a record file with that name exists (framed or not).
    pub fn exists(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    /// Writes a record: frame, then temp-file + atomic rename, so a kill at
    /// any point leaves either the previous record or the new one — never a
    /// half-written frame under the record's name. Injected faults damage
    /// the frame the way a real kill or bad disk would; the damage is then
    /// caught on the next [`CheckpointStore::read`].
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn write(&self, name: &str, payload: &[u8]) -> io::Result<()> {
        let mut framed = encode_record(payload);
        match self.faults.check(&format!("store.write:{name}")) {
            Some(FaultKind::TornWrite) => framed.truncate(framed.len() / 2),
            Some(FaultKind::CorruptBytes) => {
                let mid = framed.len() / 2;
                framed[mid] ^= 0xFF;
            }
            Some(FaultKind::ReadError) => {
                return Err(io::Error::other(format!("injected write error: {name}")))
            }
            Some(FaultKind::Panic) => panic!("injected fault: panic in store.write:{name}"),
            None => {}
        }
        let tmp = self.dir.join(format!(".{name}.tmp"));
        fs::write(&tmp, framed)?;
        fs::rename(&tmp, self.path(name))
    }

    /// Reads and unframes a record. A missing file is [`StoreRead::Absent`];
    /// a framing violation quarantines the file and returns
    /// [`StoreRead::Corrupt`].
    ///
    /// # Errors
    ///
    /// Only genuine read I/O errors (permissions, injected read faults) —
    /// corruption is *not* an error, it is a detected, quarantined state.
    pub fn read(&self, name: &str) -> io::Result<StoreRead> {
        if let Some(kind) = self.faults.check(&format!("store.read:{name}")) {
            if kind == FaultKind::ReadError {
                return Err(io::Error::other(format!("injected read error: {name}")));
            }
        }
        let bytes = match fs::read(self.path(name)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(StoreRead::Absent),
            Err(e) => return Err(e),
        };
        match decode_record(&bytes) {
            Some(payload) => Ok(StoreRead::Ok(payload)),
            None => {
                autolock_obs::counter("service.store.corrupt").incr();
                self.quarantine_file(name)?;
                Ok(StoreRead::Corrupt)
            }
        }
    }

    /// Removes a record if present (e.g. a finished job's checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates removal failures other than the file being absent.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Moves a record into the quarantine directory (deduplicating the
    /// target name with a numeric suffix) and publishes
    /// `service.store.quarantined`.
    ///
    /// # Errors
    ///
    /// Propagates rename failures other than the source being absent.
    pub fn quarantine_file(&self, name: &str) -> io::Result<()> {
        let src = self.path(name);
        let mut dst = self.quarantine.join(name);
        let mut n = 1u32;
        while dst.exists() {
            dst = self.quarantine.join(format!("{name}.{n}"));
            n += 1;
        }
        match fs::rename(&src, &dst) {
            Ok(()) => {
                autolock_obs::counter("service.store.quarantined").incr();
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Writes raw (pre-framed or foreign) bytes into quarantine under
    /// `name`, for callers that detect corruption at a higher layer.
    ///
    /// # Errors
    ///
    /// Propagates file I/O failures.
    pub fn quarantine_bytes(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut dst = self.quarantine.join(name);
        let mut n = 1u32;
        while dst.exists() {
            dst = self.quarantine.join(format!("{name}.{n}"));
            n += 1;
        }
        fs::write(&dst, bytes)?;
        autolock_obs::counter("service.store.quarantined").incr();
        Ok(())
    }

    /// The quarantine directory.
    pub fn quarantine_dir(&self) -> &Path {
        &self.quarantine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSpec;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("autolock-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path, faults: Arc<FaultPlan>) -> CheckpointStore {
        CheckpointStore::open(&dir.join("store"), &dir.join("q"), faults).unwrap()
    }

    #[test]
    fn round_trips_and_reports_absent() {
        let dir = scratch("rt");
        let store = open(&dir, FaultPlan::none());
        assert_eq!(store.read("a").unwrap(), StoreRead::Absent);
        store.write("a", b"payload bytes").unwrap();
        assert_eq!(
            store.read("a").unwrap(),
            StoreRead::Ok(b"payload bytes".to_vec())
        );
        store.remove("a").unwrap();
        assert_eq!(store.read("a").unwrap(), StoreRead::Absent);
    }

    #[test]
    fn torn_record_is_detected_and_quarantined() {
        let dir = scratch("torn");
        let store = open(&dir, FaultPlan::none());
        store.write("a", b"some checkpoint payload").unwrap();
        let path = store.path("a");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert_eq!(store.read("a").unwrap(), StoreRead::Corrupt);
        assert!(!path.exists(), "corrupt record must be moved away");
        assert!(store.quarantine_dir().join("a").exists());
        // After quarantine the name reads as absent: restart from scratch.
        assert_eq!(store.read("a").unwrap(), StoreRead::Absent);
    }

    #[test]
    fn flipped_byte_and_foreign_file_are_corrupt() {
        let dir = scratch("flip");
        let store = open(&dir, FaultPlan::none());
        store.write("a", b"0123456789").unwrap();
        let path = store.path("a");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.read("a").unwrap(), StoreRead::Corrupt);

        fs::write(store.path("b"), b"not a framed record at all").unwrap();
        assert_eq!(store.read("b").unwrap(), StoreRead::Corrupt);
        // Quarantine names deduplicate.
        fs::write(store.path("b"), b"again").unwrap();
        assert_eq!(store.read("b").unwrap(), StoreRead::Corrupt);
        assert!(store.quarantine_dir().join("b").exists());
        assert!(store.quarantine_dir().join("b.1").exists());
    }

    #[test]
    fn injected_faults_damage_the_frame() {
        let dir = scratch("inj");
        let store = open(
            &dir,
            FaultPlan::new(vec![
                FaultSpec::new("store.write:a", 1, FaultKind::TornWrite),
                FaultSpec::new("store.write:b", 1, FaultKind::CorruptBytes),
                FaultSpec::new("store.read:c", 1, FaultKind::ReadError),
            ]),
        );
        store.write("a", b"will be torn").unwrap();
        assert_eq!(store.read("a").unwrap(), StoreRead::Corrupt);
        store.write("b", b"will be corrupted").unwrap();
        assert_eq!(store.read("b").unwrap(), StoreRead::Corrupt);
        store.write("c", b"read will fail once").unwrap();
        assert!(store.read("c").is_err());
        assert_eq!(
            store.read("c").unwrap(),
            StoreRead::Ok(b"read will fail once".to_vec())
        );
        // Second writes are clean: occurrences are 1-based and consumed.
        store.write("a", b"clean now").unwrap();
        assert_eq!(
            store.read("a").unwrap(),
            StoreRead::Ok(b"clean now".to_vec())
        );
    }

    #[test]
    fn record_framing_rejects_all_violations() {
        let payload = b"x".repeat(100);
        let framed = encode_record(&payload);
        assert_eq!(decode_record(&framed), Some(payload.clone()));
        assert_eq!(decode_record(&framed[..framed.len() - 1]), None); // torn
        assert_eq!(decode_record(&framed[..10]), None); // short header
        let mut extra = framed.clone();
        extra.push(0); // trailing garbage
        assert_eq!(decode_record(&extra), None);
        let mut flipped = framed.clone();
        flipped[40] ^= 0x80;
        assert_eq!(decode_record(&flipped), None);
        let mut bad_magic = framed;
        bad_magic[0] = b'X';
        assert_eq!(decode_record(&bad_magic), None);
        assert_eq!(decode_record(&encode_record(b"")), Some(Vec::new()));
    }
}
