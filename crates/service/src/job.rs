//! Job descriptions ([`JobSpec`]) and result rows ([`JobRow`]).

use autolock_locking::{DMuxLocking, LockedNetlist, LockingScheme, XorLocking};
use autolock_netlist::ingest::{self, CircuitFormat, SequentialHandling};
use autolock_netlist::Netlist;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Which locking scheme a job applies before attacking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockSpec {
    /// XOR/XNOR random logic locking.
    Xor {
        /// Number of key bits.
        key_len: usize,
    },
    /// D-MUX locking (the MUX-based scheme MuxLink targets).
    DMux {
        /// Number of key bits.
        key_len: usize,
    },
}

impl LockSpec {
    /// The requested key length.
    pub fn key_len(&self) -> usize {
        match *self {
            LockSpec::Xor { key_len } | LockSpec::DMux { key_len } => key_len,
        }
    }

    /// Locks `original`, drawing key and placement from `rng`.
    pub fn apply(
        &self,
        original: &Netlist,
        rng: &mut dyn RngCore,
    ) -> Result<LockedNetlist, autolock_locking::LockError> {
        match *self {
            LockSpec::Xor { key_len } => XorLocking::default().lock(original, key_len, rng),
            LockSpec::DMux { key_len } => DMuxLocking::default().lock(original, key_len, rng),
        }
    }
}

/// What a job does with its circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobKind {
    /// Lock the circuit, then run the SAT attack against it with the
    /// original netlist as the I/O oracle.
    SatAttack {
        /// The locking applied before the attack.
        lock: LockSpec,
        /// Wall-clock deadline in milliseconds, enforced inside every solver
        /// call. Machine-dependent near the threshold; pair with a generous
        /// value and use `max_propagations_per_solve` for reproducible
        /// cutoffs.
        timeout_ms: u64,
        /// Deterministic per-solve work cap (`None` = unbounded): cuts off
        /// at the same search point on every machine, which is what makes
        /// induced-timeout rows reproducible.
        max_propagations_per_solve: Option<u64>,
        /// DIP-iteration cap.
        max_iterations: usize,
    },
    /// Lock the circuit, then run the MuxLink attack. The trained link
    /// model is cached in the engine's [`crate::ModelRegistry`] when one is
    /// configured; a registry hit skips training and produces a
    /// bit-identical row.
    MuxLinkAttack {
        /// The locking applied before the attack (D-MUX for an informative
        /// attack; XOR degrades to uninformed guessing).
        lock: LockSpec,
        /// The attack configuration. The engine forces `threads = 1` at run
        /// time (job-level parallelism happens above the attack).
        attack: autolock_attacks::MuxLinkConfig,
    },
    /// Run the AutoLock GA (D-MUX population, MuxLink-fitness evolution) on
    /// the circuit, writing a generation checkpoint after every step so a
    /// killed run resumes where it left off.
    Evolve {
        /// Number of key bits.
        key_len: usize,
        /// GA population size (≥ 2).
        population_size: usize,
        /// GA generation budget.
        generations: usize,
    },
    /// Run the AutoLock GA through the island-model engine: the population
    /// is split into ring-migrating subpopulations evolved in parallel, with
    /// a shared fingerprint-keyed fitness cache and (optionally) surrogate
    /// screening. Checkpoints per generation like [`JobKind::Evolve`], under
    /// `{id}.iga.json`; results are bit-identical for every thread count.
    EvolveIslands {
        /// Number of key bits.
        key_len: usize,
        /// Total GA population size, split across islands (≥ 2 per island).
        population_size: usize,
        /// GA generation budget (synchronous across islands).
        generations: usize,
        /// Number of islands (≥ 2 to actually migrate).
        islands: usize,
        /// Generations between ring-migration rounds (≥ 1).
        migration_interval: usize,
        /// Individuals each island sends per migration round.
        migrants: usize,
        /// When `true`, the real fitness is the DGCNN-backend attack and a
        /// cheap MLP-backend surrogate screens each generation; when
        /// `false`, the MLP attack is the (sole) fitness, like
        /// [`JobKind::Evolve`].
        surrogate: bool,
    },
}

impl JobKind {
    /// Short, stable label used in the `attack` column of [`JobRow`]s that
    /// fail before the attack object exists (parse/lock errors).
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::SatAttack { .. } => "sat",
            JobKind::MuxLinkAttack { .. } => "muxlink",
            JobKind::Evolve { .. } | JobKind::EvolveIslands { .. } => "evolve",
        }
    }

    /// The key length the job requests.
    pub fn key_len(&self) -> usize {
        match self {
            JobKind::SatAttack { lock, .. } | JobKind::MuxLinkAttack { lock, .. } => lock.key_len(),
            JobKind::Evolve { key_len, .. } | JobKind::EvolveIslands { key_len, .. } => *key_len,
        }
    }
}

/// One job: a circuit source (self-contained, so the spec is serializable),
/// a seed, and what to do with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job identifier; the resume protocol and checkpoint files key
    /// on it, so ids must be unique within a batch.
    pub id: String,
    /// Circuit name (used when parsing `source` and echoed in the row).
    pub circuit: String,
    /// The circuit source, `.bench` or ASCII AIGER — the engine ingests it
    /// through [`autolock_netlist::ingest::parse_auto`], which detects the
    /// format by content. Parsed at run time; a malformed source yields an
    /// `error` row rather than failing the batch.
    pub source: String,
    /// Per-job base seed: every stochastic component of the job derives
    /// from it, so the row is reproducible regardless of worker threading
    /// or kill/resume boundaries.
    pub seed: u64,
    /// How to lower a sequential source into the combinational attack
    /// target ([`SequentialHandling::Reject`] keeps the historical
    /// combinational-only behaviour and is what combinational specs use).
    pub sequential: SequentialHandling,
    /// What to do.
    pub kind: JobKind,
}

/// Terminal status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// The job ran to a verdict.
    Ok,
    /// The job's attack gave up on a budget (deadline, propagation cap or
    /// iteration cap).
    Timeout,
    /// The job could not run (parse failure, locking failure, invalid
    /// parameters); `error` holds the message.
    Error,
}

/// One JSONL result row. Deliberately carries **no wall-clock fields** so a
/// resumed run's rows are bit-for-bit identical to an uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRow {
    /// The job's [`JobSpec::id`].
    pub job_id: String,
    /// Circuit name.
    pub circuit: String,
    /// Source format the circuit was ingested from (`"bench"` / `"aiger"`,
    /// the [`CircuitFormat::label`] values).
    pub format: String,
    /// Attack identity (`sat`, `muxlink`, `muxlink-gnn`, `evolve`, …).
    pub attack: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Key length attacked/evolved.
    pub key_len: usize,
    /// `true` when the attack reached a positive verdict (SAT: provably
    /// correct key; MuxLink/Evolve: ran to completion).
    pub success: bool,
    /// Key-recovery accuracy where the attack reports one (MuxLink), or the
    /// final MuxLink accuracy of the evolved locking (Evolve). `None` for
    /// SAT jobs (their verdict is functional, not per-bit).
    pub key_accuracy: Option<f64>,
    /// Work counter: SAT DIP iterations, or GA generations actually run.
    pub iterations: u64,
    /// Execution attempts consumed, reported **only** on poison-job rows —
    /// jobs that kept panicking or I/O-failing until the engine's retry
    /// budget ran out. `None` everywhere else (including jobs that succeeded
    /// on a retry), so transient faults never change row bytes.
    #[serde(default)]
    pub attempts: Option<u64>,
    /// Error message for [`JobStatus::Error`] rows.
    pub error: Option<String>,
}

/// Which job kinds [`jobs_from_dir`] emits per circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirJobKinds {
    /// Emit a SAT-attack job (id = file stem).
    pub sat: bool,
    /// Emit a MuxLink-attack job (id = `{stem}.muxlink`, D-MUX lock).
    pub muxlink: bool,
    /// Emit an AutoLock-GA job (id = `{stem}.evolve`).
    pub evolve: bool,
}

impl Default for DirJobKinds {
    /// SAT only — the historical `serve_dir` behaviour.
    fn default() -> Self {
        DirJobKinds {
            sat: true,
            muxlink: false,
            evolve: false,
        }
    }
}

/// Configuration for [`jobs_from_dir`]: which jobs to build per `.bench`
/// file, and their budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirJobConfig {
    /// Locking applied by the SAT job. MuxLink jobs always use a D-MUX lock
    /// of the same key length (XOR degrades MuxLink to uninformed guessing).
    pub lock: LockSpec,
    /// Base seed; each job's seed mixes its id into it, so adding or
    /// removing files (or enabling more kinds) never reshuffles the other
    /// jobs' draws.
    pub seed: u64,
    /// Wall-clock deadline per SAT job.
    pub timeout_ms: u64,
    /// Deterministic per-solve propagation cap (`None` = unbounded).
    pub max_propagations_per_solve: Option<u64>,
    /// DIP-iteration cap per SAT job.
    pub max_iterations: usize,
    /// Which job kinds to emit per circuit.
    pub kinds: DirJobKinds,
    /// GA population size for `evolve` jobs (≥ 2).
    pub evolve_population: usize,
    /// GA generation budget for `evolve` jobs.
    pub evolve_generations: usize,
    /// Islands for `evolve` jobs: `<= 1` emits classic [`JobKind::Evolve`]
    /// jobs; `> 1` emits [`JobKind::EvolveIslands`] jobs (migration every
    /// generation, one migrant) under the **same ids and seeds**, so
    /// enabling islands never reshuffles the other jobs' draws or rows.
    pub evolve_islands: usize,
    /// Frames for the unrolled variant of sequential circuits (≥ 1).
    /// Sequential sources produce **two** job families per configured kind —
    /// a register-cut variant under `{stem}.cut` and a time-frame-expanded
    /// one under `{stem}.u{frames}`; combinational sources keep the
    /// historical single family under the bare stem, with identical ids and
    /// seeds.
    pub unroll_frames: usize,
}

impl Default for DirJobConfig {
    fn default() -> Self {
        DirJobConfig {
            lock: LockSpec::Xor { key_len: 16 },
            seed: 0x05E4_11CE,
            timeout_ms: 60_000,
            max_propagations_per_solve: None,
            max_iterations: 2000,
            kinds: DirJobKinds::default(),
            evolve_population: 4,
            evolve_generations: 2,
            evolve_islands: 1,
            unroll_frames: 2,
        }
    }
}

/// Stable per-circuit seed: FNV-1a of the circuit name folded into the base
/// seed, so job draws depend only on (base seed, name).
fn mix_seed(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base ^ h
}

/// Scans `dir` for circuit files — `*.bench` and ASCII AIGER `*.aag`,
/// sorted by file stem so the job order (and therefore the output row
/// order) is stable — and builds the configured job kinds per file: SAT
/// under the base id, MuxLink under `{base}.muxlink`, Evolve under
/// `{base}.evolve`.
///
/// Combinational circuits use the file stem as the base id, exactly as
/// before AIGER support existed, so existing `.bench` directories keep
/// their historical ids and seeds. A *sequential* circuit fans out into two
/// bases — `{stem}.cut` (register cut) and `{stem}.u{frames}` (time-frame
/// expansion with [`DirJobConfig::unroll_frames`]) — each carrying the
/// matching [`JobSpec::sequential`] mode.
///
/// Unreadable files and duplicate stems fail the scan; *malformed* files do
/// not — they parse at run time into `error` rows, which is what lets
/// `serve_dir` report one status row per instance and kind.
///
/// # Errors
///
/// Propagates directory-walk and file-read I/O errors; rejects two files
/// with the same stem (their job ids would collide).
pub fn jobs_from_dir(dir: &Path, config: &DirJobConfig) -> io::Result<Vec<JobSpec>> {
    let mut files: Vec<(String, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ext = path.extension().and_then(|e| e.to_str());
        if matches!(ext, Some("bench") | Some("aag")) && path.is_file() {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                files.push((stem.to_string(), path));
            }
        }
    }
    files.sort();
    for pair in files.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "duplicate circuit stem `{}`: {} and {} would collide on job ids",
                    pair[0].0,
                    pair[0].1.display(),
                    pair[1].1.display()
                ),
            ));
        }
    }
    let mut jobs = Vec::new();
    for (name, path) in files {
        let source = std::fs::read_to_string(&path)?;
        let format = path
            .extension()
            .and_then(|e| e.to_str())
            .and_then(CircuitFormat::from_extension);
        // A parse failure here still emits jobs (under the combinational
        // base id): the engine re-parses at run time and reports the error
        // as a row instead of failing the whole scan.
        let latches = ingest::parse_sequential(&name, &source, format)
            .map(|seq| seq.num_latches())
            .unwrap_or(0);
        let variants: Vec<(String, SequentialHandling)> = if latches == 0 {
            vec![(name.clone(), SequentialHandling::Reject)]
        } else {
            vec![
                (format!("{name}.cut"), SequentialHandling::Cut),
                (
                    format!("{name}.u{}", config.unroll_frames),
                    SequentialHandling::Unroll {
                        frames: config.unroll_frames,
                    },
                ),
            ]
        };
        for (base, sequential) in variants {
            let mut push = |id: String, kind: JobKind| {
                jobs.push(JobSpec {
                    id: id.clone(),
                    circuit: name.clone(),
                    source: source.clone(),
                    seed: mix_seed(config.seed, &id),
                    sequential,
                    kind,
                });
            };
            if config.kinds.sat {
                push(
                    base.clone(),
                    JobKind::SatAttack {
                        lock: config.lock,
                        timeout_ms: config.timeout_ms,
                        max_propagations_per_solve: config.max_propagations_per_solve,
                        max_iterations: config.max_iterations,
                    },
                );
            }
            if config.kinds.muxlink {
                push(
                    format!("{base}.muxlink"),
                    JobKind::MuxLinkAttack {
                        lock: LockSpec::DMux {
                            key_len: config.lock.key_len(),
                        },
                        attack: autolock_attacks::MuxLinkConfig::fast(),
                    },
                );
            }
            if config.kinds.evolve {
                let kind = if config.evolve_islands > 1 {
                    JobKind::EvolveIslands {
                        key_len: config.lock.key_len(),
                        population_size: config.evolve_population,
                        generations: config.evolve_generations,
                        islands: config.evolve_islands,
                        migration_interval: 1,
                        migrants: 1,
                        surrogate: false,
                    }
                } else {
                    JobKind::Evolve {
                        key_len: config.lock.key_len(),
                        population_size: config.evolve_population,
                        generations: config.evolve_generations,
                    }
                };
                push(format!("{base}.evolve"), kind);
            }
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_seed_is_stable_and_name_sensitive() {
        assert_eq!(mix_seed(1, "c17"), mix_seed(1, "c17"));
        assert_ne!(mix_seed(1, "c17"), mix_seed(1, "c18"));
        assert_ne!(mix_seed(1, "c17"), mix_seed(2, "c17"));
    }

    #[test]
    fn kind_labels_and_key_lens() {
        let sat = JobKind::SatAttack {
            lock: LockSpec::Xor { key_len: 8 },
            timeout_ms: 1,
            max_propagations_per_solve: None,
            max_iterations: 1,
        };
        assert_eq!(sat.label(), "sat");
        assert_eq!(sat.key_len(), 8);
        let evolve = JobKind::Evolve {
            key_len: 4,
            population_size: 6,
            generations: 2,
        };
        assert_eq!(evolve.label(), "evolve");
        assert_eq!(evolve.key_len(), 4);
    }

    #[test]
    fn job_row_serde_round_trips() {
        let row = JobRow {
            job_id: "a".into(),
            circuit: "c17".into(),
            format: "bench".into(),
            attack: "sat".into(),
            status: JobStatus::Timeout,
            key_len: 8,
            success: false,
            key_accuracy: None,
            iterations: 3,
            attempts: None,
            error: None,
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: JobRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn dir_kinds_default_to_sat_only() {
        let kinds = DirJobKinds::default();
        assert!(kinds.sat && !kinds.muxlink && !kinds.evolve);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("autolock_job_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mixed_dir_emits_stable_ids_and_sequential_variants() {
        let dir = scratch_dir("mixed");
        std::fs::write(dir.join("b1.bench"), "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        // Sequential AIGER: latch q, next = en AND q.
        std::fs::write(
            dir.join("s1.aag"),
            "aag 3 1 1 1 1\n2\n4 6\n4\n6 2 4\ni0 en\nl0 q\no0 out\nc\n",
        )
        .unwrap();
        let config = DirJobConfig {
            kinds: DirJobKinds {
                sat: true,
                muxlink: true,
                evolve: false,
            },
            ..DirJobConfig::default()
        };
        let jobs = jobs_from_dir(&dir, &config).unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "b1",
                "b1.muxlink",
                "s1.cut",
                "s1.cut.muxlink",
                "s1.u2",
                "s1.u2.muxlink"
            ]
        );
        // Combinational `.bench` jobs keep the exact historical seed.
        assert_eq!(jobs[0].seed, mix_seed(config.seed, "b1"));
        assert_eq!(jobs[0].sequential, SequentialHandling::Reject);
        assert_eq!(jobs[2].sequential, SequentialHandling::Cut);
        assert_eq!(jobs[4].sequential, SequentialHandling::Unroll { frames: 2 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_only_dirs_keep_historical_job_lists() {
        let dir = scratch_dir("legacy");
        std::fs::write(dir.join("c1.bench"), "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        std::fs::write(dir.join("c2.bench"), "this is not valid\n").unwrap();
        let jobs = jobs_from_dir(&dir, &DirJobConfig::default()).unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        // Malformed c2 still yields a job (it becomes an error row at run
        // time), under the plain stem like before AIGER support.
        assert_eq!(ids, vec!["c1", "c2"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_stems_are_rejected() {
        let dir = scratch_dir("dup");
        std::fs::write(dir.join("x.bench"), "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        std::fs::write(dir.join("x.aag"), "aag 1 1 0 1 0\n2\n2\ni0 a\no0 y\nc\n").unwrap();
        let err = jobs_from_dir(&dir, &DirJobConfig::default()).unwrap_err();
        assert!(err.to_string().contains("duplicate circuit stem"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
