//! The disk-backed trained-model registry.

use crate::fault::FaultPlan;
use crate::store::{CheckpointStore, StoreRead};
use autolock_attacks::{MuxLinkConfig, TrainedLinkModel};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Outcome of a checked registry lookup. Distinguishing `Corrupt` from
/// `Miss` is what turns silent cache rot into an observable, quarantined
/// event — both still fall back to retraining, so the job row is identical
/// either way.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryLookup {
    /// A valid cached model.
    Hit(Box<TrainedLinkModel>),
    /// No entry under that key.
    Miss,
    /// An entry existed but failed framing or deserialization; it has been
    /// moved into the registry's quarantine directory.
    Corrupt,
}

/// A directory of framed, serde-serialized [`TrainedLinkModel`]s, keyed by
/// a fingerprint of (locked-netlist structure, attack configuration, seed).
///
/// MuxLink is self-supervised on the attacked netlist, so a model is only
/// valid for the exact locked circuit it was trained on — the key's first
/// facet is the structural netlist fingerprint
/// ([`autolock_attacks::netlist_fingerprint`]). The configuration facet
/// normalizes the wall-clock-only knobs (`threads`) so the same logical
/// model is shared across machine-specific settings, and the seed facet
/// pins the training RNG stream, which is what makes a registry hit
/// bit-identical to retraining.
///
/// Entries live in a [`CheckpointStore`]: length+checksum-framed records
/// written via temp-file + atomic rename, so a killed run never leaves a
/// torn model under a key. A corrupt or torn entry is *detected* on load,
/// counted (`service.registry.corrupt`), quarantined, and treated as a
/// miss — never silently used and never a panic.
#[derive(Debug)]
pub struct ModelRegistry {
    store: CheckpointStore,
}

impl ModelRegistry {
    /// Opens (creating if needed) the registry directory, with its
    /// quarantine at `dir/quarantine`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        Self::open_with_faults(dir, FaultPlan::none())
    }

    /// [`ModelRegistry::open`] with an injected fault plan (shares the
    /// engine's plan so chaos tests cover registry I/O too).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with_faults(dir: &Path, faults: Arc<FaultPlan>) -> io::Result<Self> {
        let store = CheckpointStore::open(dir, &dir.join("quarantine"), faults)?;
        Ok(ModelRegistry { store })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        self.store.quarantine_dir().parent().expect("rooted store")
    }

    /// The registry key for a model trained on the locked netlist with the
    /// given structural fingerprint, attack configuration and base seed.
    ///
    /// Built on the shared facet fingerprint from `autolock_obs` (the same
    /// helper `RunManifest` uses for run identities). `threads` is zeroed
    /// before fingerprinting because it never changes the trained model.
    pub fn model_key(locked_fingerprint: u64, config: &MuxLinkConfig, seed: u64) -> String {
        let mut normalized = config.clone();
        normalized.threads = 0;
        let config_json =
            serde_json::to_string(&normalized).expect("MuxLinkConfig serializes to JSON");
        autolock_obs::manifest::fingerprint(&[
            "muxlink-model",
            &format!("{locked_fingerprint:016x}"),
            &config_json,
            &seed.to_string(),
        ])
    }

    fn entry_name(key: &str) -> String {
        format!("{key}.mdl")
    }

    /// The on-disk path of an entry (exposed for tests and tooling).
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.store.path(&Self::entry_name(key))
    }

    /// Checked lookup: distinguishes a valid hit, a clean miss, and a
    /// corrupt entry (quarantined, then treated as a miss). Publishes
    /// `service.registry.hits` / `.misses` / `.corrupt`. An I/O error on
    /// the read (including injected read faults) is counted as a miss — the
    /// caller retrains either way.
    pub fn load_checked(&self, key: &str) -> RegistryLookup {
        match self.store.read(&Self::entry_name(key)) {
            Ok(StoreRead::Ok(payload)) => match std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| serde_json::from_str(text).ok())
            {
                Some(model) => {
                    autolock_obs::counter("service.registry.hits").incr();
                    RegistryLookup::Hit(Box::new(model))
                }
                None => {
                    // Framing was intact but the payload is not a model:
                    // quarantine the decoded bytes so the evidence survives.
                    autolock_obs::counter("service.registry.corrupt").incr();
                    let _ = self
                        .store
                        .quarantine_bytes(&format!("{key}.mdl.payload"), &payload);
                    let _ = self.store.remove(&Self::entry_name(key));
                    RegistryLookup::Corrupt
                }
            },
            Ok(StoreRead::Absent) => {
                autolock_obs::counter("service.registry.misses").incr();
                RegistryLookup::Miss
            }
            Ok(StoreRead::Corrupt) => {
                // The store already quarantined the file and counted
                // `service.store.corrupt`; add the registry-facet counter.
                autolock_obs::counter("service.registry.corrupt").incr();
                RegistryLookup::Corrupt
            }
            Err(_) => {
                autolock_obs::counter("service.registry.misses").incr();
                RegistryLookup::Miss
            }
        }
    }

    /// Loads the model stored under `key`, or `None` when absent or corrupt
    /// (both behave like a miss; corrupt entries are quarantined and
    /// counted via [`ModelRegistry::load_checked`]).
    pub fn load(&self, key: &str) -> Option<TrainedLinkModel> {
        match self.load_checked(key) {
            RegistryLookup::Hit(model) => Some(*model),
            RegistryLookup::Miss | RegistryLookup::Corrupt => None,
        }
    }

    /// Atomically stores `model` under `key` as a framed record.
    ///
    /// # Errors
    ///
    /// Propagates file-write and rename failures (including injected write
    /// errors).
    pub fn store(&self, key: &str, model: &TrainedLinkModel) -> io::Result<()> {
        let json = serde_json::to_string(model).expect("TrainedLinkModel serializes to JSON");
        self.store.write(&Self::entry_name(key), json.as_bytes())
    }

    /// Loads the model under `key`, or trains one with `train`, stores it,
    /// and returns it. The second element is `true` on a registry hit.
    /// Registry counters (`service.registry.hits` / `.misses` / `.corrupt`)
    /// record the outcome; a failed store is counted but not fatal (the
    /// model is still returned).
    pub fn get_or_train(
        &self,
        key: &str,
        train: impl FnOnce() -> TrainedLinkModel,
    ) -> (TrainedLinkModel, bool) {
        if let RegistryLookup::Hit(model) = self.load_checked(key) {
            return (*model, true);
        }
        let model = train();
        if self.store(key, &model).is_err() {
            autolock_obs::counter("service.registry.store_failures").incr();
        }
        (model, false)
    }

    /// Number of models currently stored.
    pub fn len(&self) -> usize {
        std::fs::read_dir(self.dir())
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("mdl"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn key_ignores_thread_count_but_not_substance() {
        let base = MuxLinkConfig::fast();
        let key = ModelRegistry::model_key(7, &base, 1);
        assert_eq!(
            key,
            ModelRegistry::model_key(7, &base.clone().with_threads(4), 1)
        );
        assert_ne!(key, ModelRegistry::model_key(8, &base, 1));
        assert_ne!(key, ModelRegistry::model_key(7, &base, 2));
        let mut other = base.clone();
        other.epochs += 1;
        assert_ne!(key, ModelRegistry::model_key(7, &other, 1));
    }

    #[test]
    fn store_load_round_trip_and_corrupt_entry_is_quarantined() {
        autolock_obs::enable();
        let dir = std::env::temp_dir().join(format!("svc_registry_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.is_empty());
        let model = TrainedLinkModel::Uninformative;
        reg.store("k1", &model).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.load("k1"), Some(TrainedLinkModel::Uninformative));
        assert_eq!(reg.load_checked("absent"), RegistryLookup::Miss);

        // Smash the entry: the lookup must say Corrupt (not Miss), publish
        // the corrupt counter, and move the file into quarantine.
        let corrupt_before = autolock_obs::counter("service.registry.corrupt").value();
        fs::write(reg.path_for("k1"), "{ torn").unwrap();
        assert_eq!(reg.load_checked("k1"), RegistryLookup::Corrupt);
        assert_eq!(
            autolock_obs::counter("service.registry.corrupt").value(),
            corrupt_before + 1
        );
        assert!(!reg.path_for("k1").exists());
        assert!(dir.join("quarantine").join("k1.mdl").exists());

        // After quarantine the key is a clean miss; get_or_train repopulates.
        let (got, hit) = reg.get_or_train("k1", || TrainedLinkModel::Uninformative);
        assert!(!hit);
        assert_eq!(got, TrainedLinkModel::Uninformative);
        let (_, hit) = reg.get_or_train("k1", || unreachable!("must be a hit"));
        assert!(hit);

        // Intact frame, garbage payload: still Corrupt, evidence preserved.
        let framed = crate::store::encode_record(b"not a model");
        fs::write(reg.path_for("k1"), framed).unwrap();
        assert_eq!(reg.load_checked("k1"), RegistryLookup::Corrupt);
        assert!(dir.join("quarantine").join("k1.mdl.payload").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
