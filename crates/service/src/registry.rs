//! The disk-backed trained-model registry.

use autolock_attacks::{MuxLinkConfig, TrainedLinkModel};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of serde-serialized [`TrainedLinkModel`]s, keyed by a
/// fingerprint of (locked-netlist structure, attack configuration, seed).
///
/// MuxLink is self-supervised on the attacked netlist, so a model is only
/// valid for the exact locked circuit it was trained on — the key's first
/// facet is the structural netlist fingerprint
/// ([`autolock_attacks::netlist_fingerprint`]). The configuration facet
/// normalizes the wall-clock-only knobs (`threads`) so the same logical
/// model is shared across machine-specific settings, and the seed facet
/// pins the training RNG stream, which is what makes a registry hit
/// bit-identical to retraining.
///
/// Writes are atomic (`tempfile` + rename), so a killed run never leaves a
/// torn model; a corrupt or unreadable entry is treated as a miss and
/// overwritten on the next store.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) the registry directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ModelRegistry {
            dir: dir.to_path_buf(),
        })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The registry key for a model trained on the locked netlist with the
    /// given structural fingerprint, attack configuration and base seed.
    ///
    /// Built on the shared facet fingerprint from `autolock_obs` (the same
    /// helper `RunManifest` uses for run identities). `threads` is zeroed
    /// before fingerprinting because it never changes the trained model.
    pub fn model_key(locked_fingerprint: u64, config: &MuxLinkConfig, seed: u64) -> String {
        let mut normalized = config.clone();
        normalized.threads = 0;
        let config_json =
            serde_json::to_string(&normalized).expect("MuxLinkConfig serializes to JSON");
        autolock_obs::manifest::fingerprint(&[
            "muxlink-model",
            &format!("{locked_fingerprint:016x}"),
            &config_json,
            &seed.to_string(),
        ])
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the model stored under `key`, or `None` when absent or
    /// unreadable (a corrupt entry behaves like a miss).
    pub fn load(&self, key: &str) -> Option<TrainedLinkModel> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Atomically stores `model` under `key`.
    ///
    /// # Errors
    ///
    /// Propagates file-write and rename failures.
    pub fn store(&self, key: &str, model: &TrainedLinkModel) -> io::Result<()> {
        let json = serde_json::to_string(model).expect("TrainedLinkModel serializes to JSON");
        let tmp = self.dir.join(format!(".{key}.tmp"));
        fs::write(&tmp, json)?;
        fs::rename(&tmp, self.path_for(key))
    }

    /// Loads the model under `key`, or trains one with `train`, stores it,
    /// and returns it. The second element is `true` on a registry hit.
    /// Registry counters (`service.registry.hits` / `.misses`) record the
    /// outcome; a failed store is counted but not fatal (the model is still
    /// returned).
    pub fn get_or_train(
        &self,
        key: &str,
        train: impl FnOnce() -> TrainedLinkModel,
    ) -> (TrainedLinkModel, bool) {
        if let Some(model) = self.load(key) {
            autolock_obs::counter("service.registry.hits").incr();
            return (model, true);
        }
        autolock_obs::counter("service.registry.misses").incr();
        let model = train();
        if self.store(key, &model).is_err() {
            autolock_obs::counter("service.registry.store_failures").incr();
        }
        (model, false)
    }

    /// Number of models currently stored.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// `true` when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_thread_count_but_not_substance() {
        let base = MuxLinkConfig::fast();
        let key = ModelRegistry::model_key(7, &base, 1);
        assert_eq!(
            key,
            ModelRegistry::model_key(7, &base.clone().with_threads(4), 1)
        );
        assert_ne!(key, ModelRegistry::model_key(8, &base, 1));
        assert_ne!(key, ModelRegistry::model_key(7, &base, 2));
        let mut other = base.clone();
        other.epochs += 1;
        assert_ne!(key, ModelRegistry::model_key(7, &other, 1));
    }

    #[test]
    fn store_load_round_trip_and_miss_on_corruption() {
        let dir = std::env::temp_dir().join(format!("svc_registry_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let reg = ModelRegistry::open(&dir).unwrap();
        assert!(reg.is_empty());
        let model = TrainedLinkModel::Uninformative;
        reg.store("k1", &model).unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.load("k1"), Some(TrainedLinkModel::Uninformative));
        assert_eq!(reg.load("absent"), None);
        fs::write(reg.path_for("k1"), "{ torn").unwrap();
        assert_eq!(reg.load("k1"), None);
        let (got, hit) = reg.get_or_train("k1", || TrainedLinkModel::Uninformative);
        assert!(!hit);
        assert_eq!(got, TrainedLinkModel::Uninformative);
        let (_, hit) = reg.get_or_train("k1", || unreachable!("must be a hit"));
        assert!(hit);
        let _ = fs::remove_dir_all(&dir);
    }
}
