//! Job-side bundles of the unified [`Resumable`] API.
//!
//! The engine used to hand-roll a checkpoint loop per job kind. These types
//! package each long-running job kind — the classic single-population GA
//! ([`EvolveJob`]) and the island-model GA ([`IslandEvolveJob`]) — as a
//! [`Resumable`] context bundle, so the engine (and the E14 bench driver)
//! drives every kind through one generic load/step/persist loop. The SAT
//! attack's bundle lives in [`autolock_attacks::ResumableSatAttack`].
//!
//! Both bundles replicate the engine's historical seeding protocol exactly:
//! the job RNG is seeded from the spec seed, the initial population is drawn
//! from it locus-by-locus, and the *post-seeding* RNG position becomes the
//! GA's stream — so rows produced through this API are bit-identical to the
//! pre-refactor engine's.

use crate::job::{JobKind, JobSpec};
use autolock::operators::{CrossoverKind, LocusCrossover, LocusMutation, MutationKind};
use autolock::{LockingGenotype, MuxLinkFitness};
use autolock_attacks::MuxLinkConfig;
use autolock_evo::{
    GaConfig, GaResult, GeneticAlgorithm, IslandConfig, IslandGa, Resumable, ResumableGa,
    ResumableIslandGa, SelectionMethod, SurrogateScreen,
};
use autolock_locking::DMuxLocking;
use autolock_netlist::ingest::{self, IngestOptions};
use autolock_netlist::Netlist;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The shared per-island/per-run GA settings used by every evolve job.
fn evolve_ga_config(generations: usize, elitism: usize) -> GaConfig {
    GaConfig {
        generations,
        crossover_rate: 0.9,
        mutation_rate: 0.4,
        elitism,
        selection: SelectionMethod::Tournament { size: 3 },
        parallel: false,
        target_fitness: None,
        stagnation_limit: None,
    }
}

/// Seeds the initial D-MUX population exactly like the pre-refactor engine:
/// `population_size` locus selections drawn back-to-back from `rng`.
fn seed_population(
    original: &Arc<Netlist>,
    key_len: usize,
    population_size: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<LockingGenotype>, String> {
    let locking = DMuxLocking::default();
    let mut population = Vec::with_capacity(population_size);
    for _ in 0..population_size {
        population.push(
            locking
                .select_loci(original, key_len, rng)
                .map_err(|e| format!("lock: {e}"))?,
        );
    }
    Ok(population)
}

/// A classic single-population evolve job, bundled for the [`Resumable`]
/// driver: circuit, GA, MuxLink fitness, locus operators, seeded initial
/// population and positioned RNG.
pub struct EvolveJob {
    ga: GeneticAlgorithm,
    fitness: MuxLinkFitness,
    crossover: LocusCrossover,
    mutation: LocusMutation,
    initial: Vec<LockingGenotype>,
    rng: ChaCha8Rng,
}

impl EvolveJob {
    /// Builds the job from its raw parts.
    ///
    /// # Errors
    ///
    /// Returns a message when the parameters are invalid (population < 2,
    /// empty key) or the circuit cannot host `key_len` MUX loci. These are
    /// deterministic failures — callers should not retry.
    pub fn from_parts(
        netlist: Netlist,
        seed: u64,
        key_len: usize,
        population_size: usize,
        generations: usize,
    ) -> Result<Self, String> {
        if population_size < 2 {
            return Err("population size must be at least 2".to_string());
        }
        if key_len == 0 {
            return Err("key length must be at least 1".to_string());
        }
        let original = Arc::new(netlist);
        let ga = GeneticAlgorithm::new(evolve_ga_config(generations, 2.min(population_size - 1)));
        let fitness = MuxLinkFitness::new(
            original.clone(),
            MuxLinkConfig::fast().with_threads(1),
            seed,
            1,
        );
        let crossover = LocusCrossover::new(original.clone(), key_len, CrossoverKind::OnePoint);
        let mutation = LocusMutation::new(original.clone(), key_len, MutationKind::Composite);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial = seed_population(&original, key_len, population_size, &mut rng)?;
        Ok(EvolveJob {
            ga,
            fitness,
            crossover,
            mutation,
            initial,
            rng,
        })
    }

    /// The [`Resumable`] view of this job (borrows the bundle; cheap to
    /// rebuild, e.g. once per engine attempt).
    pub fn resumable(
        &self,
    ) -> ResumableGa<'_, LockingGenotype, MuxLinkFitness, LocusCrossover, LocusMutation> {
        ResumableGa::new(
            &self.ga,
            self.initial.clone(),
            &self.fitness,
            &self.crossover,
            &self.mutation,
            self.rng.clone(),
        )
    }
}

/// An island-model evolve job, bundled for the [`Resumable`] driver.
///
/// The population is split across `islands` ring-migrating subpopulations
/// (elitism 1 per island, so even two-member islands keep breeding); the
/// fitness is the MLP-backend MuxLink attack, and with `surrogate` enabled
/// the real fitness becomes the DGCNN-backend attack screened by the MLP
/// one — both sharing a single fingerprint-keyed [`autolock::FitnessCache`].
pub struct IslandEvolveJob {
    island_ga: IslandGa,
    fitness: MuxLinkFitness,
    surrogate: Option<MuxLinkFitness>,
    survivor_fraction: f64,
    crossover: LocusCrossover,
    mutation: LocusMutation,
    initial: Vec<LockingGenotype>,
    rng: ChaCha8Rng,
}

impl IslandEvolveJob {
    /// Builds the job from its raw parts. `threads` is the island fan-out
    /// width (wall-clock only — results are thread-count invariant).
    ///
    /// # Errors
    ///
    /// Returns a message for invalid parameters: population < 2, empty key,
    /// or fewer than two members per island.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        netlist: Netlist,
        seed: u64,
        key_len: usize,
        population_size: usize,
        generations: usize,
        islands: usize,
        migration_interval: usize,
        migrants: usize,
        surrogate: bool,
        threads: usize,
    ) -> Result<Self, String> {
        if population_size < 2 {
            return Err("population size must be at least 2".to_string());
        }
        if key_len == 0 {
            return Err("key length must be at least 1".to_string());
        }
        let k = islands.max(1);
        if population_size < k * 2 {
            return Err(format!(
                "population size {population_size} cannot fill {k} islands with 2 members each"
            ));
        }
        let original = Arc::new(netlist);
        let island_ga = IslandGa::new(
            GeneticAlgorithm::new(evolve_ga_config(generations, 1)),
            IslandConfig {
                islands: k,
                migration_interval,
                migrants,
                threads,
            },
        );
        // With screening on, the expensive DGCNN-backend attack is the real
        // fitness and the cheap MLP-backend attack ranks each generation;
        // both share one cache so repeat genotypes (elites, migrants) are
        // free on either path.
        let real_config = if surrogate {
            MuxLinkConfig::gnn_fast().with_threads(1)
        } else {
            MuxLinkConfig::fast().with_threads(1)
        };
        let fitness = MuxLinkFitness::new(original.clone(), real_config, seed, 1);
        let surrogate = surrogate.then(|| {
            MuxLinkFitness::new(
                original.clone(),
                MuxLinkConfig::fast().with_threads(1),
                seed,
                1,
            )
            .with_cache(fitness.cache().clone())
        });
        let crossover = LocusCrossover::new(original.clone(), key_len, CrossoverKind::OnePoint);
        let mutation = LocusMutation::new(original.clone(), key_len, MutationKind::Composite);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial = seed_population(&original, key_len, population_size, &mut rng)?;
        Ok(IslandEvolveJob {
            island_ga,
            fitness,
            surrogate,
            survivor_fraction: 0.5,
            crossover,
            mutation,
            initial,
            rng,
        })
    }

    /// Builds the job from a [`JobSpec`] carrying a
    /// [`JobKind::EvolveIslands`] kind (ingests the spec's source through
    /// the format-detecting front door, honoring its sequential mode).
    /// Used by the E14 bench driver to pre-step and checkpoint a job exactly
    /// as the engine would.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec is not an island-evolve job, its
    /// source does not parse, or the parameters are invalid.
    pub fn from_spec(spec: &JobSpec, threads: usize) -> Result<Self, String> {
        let opts = IngestOptions {
            sequential: spec.sequential,
            ..IngestOptions::default()
        };
        let netlist = ingest::parse_auto(&spec.circuit, &spec.source, &opts)
            .map_err(|e| format!("parse: {e}"))?
            .netlist;
        Self::from_spec_netlist(spec, netlist, threads)
    }

    /// Like [`IslandEvolveJob::from_spec`] but for callers (the engine) that
    /// already parsed the spec's source.
    ///
    /// # Errors
    ///
    /// Returns a message when the spec is not an island-evolve job or the
    /// parameters are invalid.
    pub fn from_spec_netlist(
        spec: &JobSpec,
        netlist: Netlist,
        threads: usize,
    ) -> Result<Self, String> {
        let JobKind::EvolveIslands {
            key_len,
            population_size,
            generations,
            islands,
            migration_interval,
            migrants,
            surrogate,
        } = &spec.kind
        else {
            return Err(format!("job {} is not an island-evolve job", spec.id));
        };
        Self::from_parts(
            netlist,
            spec.seed,
            *key_len,
            *population_size,
            *generations,
            *islands,
            *migration_interval,
            *migrants,
            *surrogate,
            threads,
        )
    }

    /// The [`Resumable`] view of this job.
    pub fn resumable(
        &self,
    ) -> ResumableIslandGa<'_, LockingGenotype, MuxLinkFitness, LocusCrossover, LocusMutation> {
        let screen = self.surrogate.as_ref().map(|s| SurrogateScreen {
            surrogate: s as &dyn autolock_evo::FitnessFunction<LockingGenotype>,
            survivor_fraction: self.survivor_fraction,
        });
        ResumableIslandGa::new(
            &self.island_ga,
            self.initial.clone(),
            &self.fitness,
            &self.crossover,
            &self.mutation,
            screen,
            self.rng.clone(),
        )
    }

    /// The shared fitness cache (hit/miss counts flow through
    /// `autolock.fitness_cache.*` counters as well).
    pub fn cache(&self) -> &Arc<autolock::FitnessCache> {
        self.fitness.cache()
    }
}

/// Drives a fresh [`Resumable`] job to completion without persistence —
/// convenience for tests and bench baselines.
pub fn run_fresh<R: Resumable>(job: &R) -> R::Output {
    autolock_evo::run_to_completion(job, |_| {})
}

/// The result type evolve jobs produce.
pub type EvolveResult = GaResult<LockingGenotype>;
