//! Integration tests for the attack suite on realistic locked circuits.

use autolock_attacks::{
    has_mux_key_gates, KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, RandomGuessAttack,
    SatAttack, SatAttackConfig, XorStructuralAttack,
};
use autolock_circuits::{suite_circuit, synth_circuit};
use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};
use autolock_netlist::equiv;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn attack_outcomes_are_well_formed_for_every_attack_and_scheme() {
    let original = synth_circuit("wf", 12, 5, 200, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let lockings = vec![
        XorLocking::default().lock(&original, 12, &mut rng).unwrap(),
        DMuxLocking::default()
            .lock(&original, 12, &mut rng)
            .unwrap(),
    ];
    let attacks: Vec<Box<dyn KeyRecoveryAttack>> = vec![
        Box::new(RandomGuessAttack),
        Box::new(XorStructuralAttack),
        Box::new(MuxLinkAttack::new(MuxLinkConfig::fast())),
        Box::new(MuxLinkAttack::new(MuxLinkConfig::locality_only())),
    ];
    for locked in &lockings {
        for attack in &attacks {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let outcome = attack.attack(locked, &mut rng);
            assert_eq!(outcome.key_len, locked.key_len());
            assert_eq!(outcome.guesses.len(), locked.key_len());
            assert!((0.0..=1.0).contains(&outcome.key_accuracy));
            assert!((0.0..=1.0).contains(&outcome.decided_fraction));
            // Every key bit has exactly one guess and sane confidence.
            let mut bits: Vec<usize> = outcome.guesses.iter().map(|g| g.bit).collect();
            bits.sort_unstable();
            assert_eq!(bits, (0..locked.key_len()).collect::<Vec<_>>());
            for guess in &outcome.guesses {
                assert!((0.5..=1.0).contains(&guess.confidence));
            }
            assert_eq!(outcome.predicted_key().len(), locked.key_len());
            assert_eq!(outcome.scheme, locked.scheme());
        }
    }
    assert!(has_mux_key_gates(&lockings[1]));
    assert!(!has_mux_key_gates(&lockings[0]));
}

#[test]
fn muxlink_candidates_cover_every_key_bit_of_dmux() {
    let original = suite_circuit("s160").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let locked = DMuxLocking::default()
        .lock(&original, 10, &mut rng)
        .unwrap();
    let candidates = MuxLinkAttack::find_candidates(locked.netlist());
    for bit in 0..10 {
        let n = candidates.iter().filter(|c| c.key_bit == bit).count();
        assert_eq!(n, 2, "key bit {bit} should be covered by exactly 2 MUXes");
    }
    // The candidate drivers of each MUX are exactly the two loci wires.
    for cand in &candidates {
        assert_ne!(cand.cand_key0, cand.cand_key1);
        assert_ne!(cand.sink, cand.mux);
    }
}

#[test]
fn muxlink_accuracy_scales_with_circuit_size() {
    // On larger circuits (lower locking density) the attack should be at least
    // as strong as on smaller ones — the regime the paper evaluates in.
    let small = synth_circuit("small", 12, 5, 150, 11);
    let large = synth_circuit("large", 24, 10, 600, 11);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let locked_small = DMuxLocking::default().lock(&small, 16, &mut rng).unwrap();
    let locked_large = DMuxLocking::default().lock(&large, 16, &mut rng).unwrap();
    let attack = MuxLinkAttack::new(MuxLinkConfig::fast());
    // Five retrains: single-seed accuracy of the `fast` preset swings by
    // ±0.1 on a 16-bit key, so the mean needs a few repeats to be a fair
    // measure of attack strength.
    let acc = |l| {
        let mut total = 0.0;
        for s in 0..5u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(100 + s);
            total += attack.attack(l, &mut rng).key_accuracy;
        }
        total / 5.0
    };
    let acc_small = acc(&locked_small);
    let acc_large = acc(&locked_large);
    assert!(
        acc_large >= 0.7,
        "expected a strong attack on the low-density locking, got {acc_large}"
    );
    assert!(
        acc_large + 0.15 >= acc_small,
        "small {acc_small}, large {acc_large}"
    );
}

#[test]
fn sat_attack_key_is_always_functionally_correct_when_successful() {
    for seed in [1u64, 2, 3] {
        let original = synth_circuit("satfn", 9, 4, 80, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let locked = DMuxLocking::default().lock(&original, 5, &mut rng).unwrap();
        let outcome = SatAttack::new(SatAttackConfig {
            max_iterations: 400,
            timeout_ms: 30_000,
            ..SatAttackConfig::default()
        })
        .attack(&locked, &original);
        assert!(outcome.success, "seed {seed}");
        let ok = equiv::random_equivalent(
            &original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
            8,
            &mut rng,
        )
        .unwrap();
        assert!(
            ok,
            "seed {seed}: recovered key must be functionally correct"
        );
        assert!(outcome.iterations as usize <= 400);
    }
}

#[test]
fn locality_only_attack_is_much_weaker_than_full_muxlink_on_dmux() {
    let original = synth_circuit("loc", 16, 8, 400, 21);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let locked = DMuxLocking::default()
        .lock(&original, 24, &mut rng)
        .unwrap();
    let run = |cfg: MuxLinkConfig| {
        let mut total = 0.0;
        for s in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(50 + s);
            total += MuxLinkAttack::new(cfg.clone())
                .attack(&locked, &mut rng)
                .key_accuracy;
        }
        total / 3.0
    };
    let full = run(MuxLinkConfig::fast());
    let locality = run(MuxLinkConfig::locality_only());
    assert!(
        full > locality + 0.1,
        "full MuxLink ({full}) should clearly beat the locality-only learner ({locality})"
    );
}

#[test]
fn mlp_attack_outcome_is_identical_across_thread_counts() {
    // The MLP backend's bagged ensemble trains from per-member seeded RNGs
    // and reduces predictions in fixed member order, so — like the GNN
    // backend (`gnn_backend.rs`) — its outcome is bit-for-bit identical
    // whether it trains serially or fans members across rayon threads.
    let original = synth_circuit("thr", 12, 5, 200, 31);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();
    let run = |threads: usize| {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        MuxLinkAttack::new(MuxLinkConfig::fast().with_threads(threads)).attack(&locked, &mut r)
    };
    let serial = run(1);
    for threads in [2, 4, 0] {
        let parallel = run(threads);
        assert_eq!(
            parallel.key_accuracy, serial.key_accuracy,
            "key accuracy diverged at threads = {threads}"
        );
        assert_eq!(parallel.guesses.len(), serial.guesses.len());
        for (p, s) in parallel.guesses.iter().zip(&serial.guesses) {
            assert_eq!(p.bit, s.bit);
            assert_eq!(p.value, s.value, "bit {} diverged", p.bit);
            assert_eq!(
                p.confidence.to_bits(),
                s.confidence.to_bits(),
                "confidence of bit {} diverged",
                p.bit
            );
        }
    }
}
