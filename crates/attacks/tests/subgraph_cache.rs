//! The subgraph cache must be a pure performance artifact: identical
//! outcomes with and without it, real hits across attack repeats, and a
//! large-circuit attack that stays inside the bounded cache.

use autolock_attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_circuits::{suite_circuit, SuiteScale};
use autolock_locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn assert_same_outcome(a: &autolock_attacks::AttackOutcome, b: &autolock_attacks::AttackOutcome) {
    assert_eq!(a.key_accuracy, b.key_accuracy);
    assert_eq!(a.guesses.len(), b.guesses.len());
    for (x, y) in a.guesses.iter().zip(&b.guesses) {
        assert_eq!(x.bit, y.bit);
        assert_eq!(x.value, y.value);
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
    }
}

#[test]
fn cached_and_uncached_attacks_are_bit_identical() {
    let original = autolock_circuits::synth_circuit("cache_eq", 14, 6, 250, 17);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();
    for config in [MuxLinkConfig::fast(), MuxLinkConfig::gnn_fast()] {
        let cached = MuxLinkAttack::new(config.clone().with_subgraph_cache(4096));
        let uncached = MuxLinkAttack::new(config.with_subgraph_cache(0));
        let run = |attack: &MuxLinkAttack| {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            attack.attack(&locked, &mut r)
        };
        assert_same_outcome(&run(&cached), &run(&uncached));
        assert!(cached.cache_stats().misses > 0, "cache was never consulted");
        assert_eq!(uncached.cache_stats().misses, 0);
    }
}

#[test]
fn repeats_on_the_same_netlist_hit_the_cache() {
    let original = autolock_circuits::synth_circuit("cache_hits", 14, 6, 250, 19);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();
    let attack = MuxLinkAttack::new(MuxLinkConfig::fast());
    let run = |seed: u64| {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        attack.attack(&locked, &mut r)
    };
    let first = run(100);
    let misses_after_first = attack.cache_stats().misses;
    let hits_after_first = attack.cache_stats().hits;
    let second = run(100);
    // Identical RNG seed => identical outcome, now largely served from the
    // cache: every candidate-scoring subgraph repeats.
    assert_same_outcome(&first, &second);
    let stats = attack.cache_stats();
    assert!(
        stats.hits > hits_after_first,
        "second repeat produced no cache hits: {stats:?}"
    );
    // The candidate set is identical across repeats, so scoring misses must
    // not grow by the full candidate count again.
    assert!(
        stats.misses < misses_after_first * 2,
        "second repeat re-extracted everything: {stats:?}"
    );
}

#[test]
fn switching_netlists_resets_the_cache_domain() {
    let a = autolock_circuits::synth_circuit("cache_a", 12, 5, 200, 23);
    let b = autolock_circuits::synth_circuit("cache_b", 12, 5, 200, 29);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let locked_a = DMuxLocking::default().lock(&a, 10, &mut rng).unwrap();
    let locked_b = DMuxLocking::default().lock(&b, 10, &mut rng).unwrap();
    let shared = MuxLinkAttack::new(MuxLinkConfig::fast());
    let run = |attack: &MuxLinkAttack, locked| {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        attack.attack(locked, &mut r)
    };
    // Warm the shared instance on netlist A, then attack B: the outcome
    // must equal a fresh instance's (no cross-netlist contamination).
    run(&shared, &locked_a);
    let contaminated = run(&shared, &locked_b);
    let fresh = run(&MuxLinkAttack::new(MuxLinkConfig::fast()), &locked_b);
    assert_same_outcome(&contaminated, &fresh);
}

/// The attack completes on a structured ISCAS-scale member with the
/// *bounded* cache exercised (more distinct subgraphs than capacity), i.e.
/// memory stays capped by `capacity` entries + one scoring chunk. The
/// member is scale-dependent: CI (quick) uses the c2670-class circuit, a
/// full-scale run (`AUTOLOCK_SUITE_SCALE=full`) the c7552-class one.
#[test]
fn structured_member_attack_completes_with_bounded_cache() {
    let name = match SuiteScale::from_env() {
        SuiteScale::Quick => "st2670",
        SuiteScale::Full => "st7552",
    };
    let original = suite_circuit(name).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let locked = DMuxLocking::default()
        .lock(&original, 24, &mut rng)
        .unwrap();
    // Capacity far below the number of distinct subgraphs the attack
    // touches, so eviction must kick in and stay correct.
    let attack = MuxLinkAttack::new(
        MuxLinkConfig::fast()
            .with_subgraph_cache(64)
            .with_threads(1),
    );
    let outcome = attack.attack(&locked, &mut rng);
    assert_eq!(outcome.guesses.len(), 24);
    let stats = attack.cache_stats();
    assert!(
        stats.evictions > 0,
        "cache bound never exercised: {stats:?}"
    );
    assert!(
        outcome.key_accuracy > 0.5,
        "attack should beat chance on {name}, got {}",
        outcome.key_accuracy
    );
}
