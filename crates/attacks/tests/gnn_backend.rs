//! End-to-end tests of the DGCNN MuxLink backend against the MLP backend.

use autolock_attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_circuits::synth_circuit;
use autolock_locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The acceptance scenario: on a small generated circuit the GNN backend
/// recovers at least as many key bits as the MLP backend.
#[test]
fn gnn_backend_recovers_at_least_as_many_key_bits_as_mlp() {
    let original = synth_circuit("g", 12, 5, 180, 17);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();

    let mut r = ChaCha8Rng::seed_from_u64(4);
    let mlp = MuxLinkAttack::new(MuxLinkConfig::fast())
        .attack(&locked, &mut r)
        .key_accuracy;
    let mut r = ChaCha8Rng::seed_from_u64(4);
    let gnn = MuxLinkAttack::new(MuxLinkConfig::gnn_fast())
        .attack(&locked, &mut r)
        .key_accuracy;

    assert!((0.0..=1.0).contains(&gnn));
    assert!(
        gnn >= mlp,
        "DGCNN backend should match or beat the MLP here: gnn {gnn} vs mlp {mlp}"
    );
    // Both backends must clearly beat coin flipping on plain D-MUX.
    assert!(gnn > 0.6, "gnn accuracy {gnn}");
}

/// The GNN backend reports its own attack name (used by result tables) and
/// is deterministic for a fixed seed.
#[test]
fn gnn_backend_name_and_determinism() {
    let attack = MuxLinkAttack::new(MuxLinkConfig::gnn_fast());
    assert_eq!(attack.name(), "muxlink-gnn");

    let original = synth_circuit("d", 10, 4, 110, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
    let run = |seed: u64| {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        attack.attack(&locked, &mut r).key_accuracy
    };
    assert_eq!(run(42), run(42), "same seed must give identical outcomes");
}

/// The full-strength GNN config also runs and stays within bounds (smoke
/// test for the heavier configuration used by experiments).
#[test]
fn gnn_full_config_smoke() {
    let original = synth_circuit("s", 10, 4, 100, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
    let mut r = ChaCha8Rng::seed_from_u64(6);
    let outcome = MuxLinkAttack::new(MuxLinkConfig::gnn()).attack(&locked, &mut r);
    assert_eq!(outcome.guesses.len(), 6);
    assert!((0.0..=1.0).contains(&outcome.key_accuracy));
    assert!(outcome
        .guesses
        .iter()
        .all(|g| (0.5..=1.0).contains(&g.confidence)));
}
