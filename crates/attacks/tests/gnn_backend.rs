//! End-to-end tests of the DGCNN MuxLink backend against the MLP backend.

use autolock_attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_circuits::synth_circuit;
use autolock_locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Extra thread count folded into the compared sets, from the CI
/// thread-matrix leg's `AUTOLOCK_THREADS` (the multi-core runners are the
/// only machines where `n > 1` workers actually exist).
fn env_threads() -> Option<usize> {
    std::env::var("AUTOLOCK_THREADS").ok()?.parse().ok()
}

/// The acceptance scenario: on a small generated circuit the GNN backend
/// recovers at least as many key bits as the MLP backend.
#[test]
fn gnn_backend_recovers_at_least_as_many_key_bits_as_mlp() {
    let original = synth_circuit("g", 12, 5, 180, 17);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();

    let mut r = ChaCha8Rng::seed_from_u64(4);
    let mlp = MuxLinkAttack::new(MuxLinkConfig::fast())
        .attack(&locked, &mut r)
        .key_accuracy;
    let mut r = ChaCha8Rng::seed_from_u64(4);
    let gnn = MuxLinkAttack::new(MuxLinkConfig::gnn_fast())
        .attack(&locked, &mut r)
        .key_accuracy;

    assert!((0.0..=1.0).contains(&gnn));
    assert!(
        gnn >= mlp,
        "DGCNN backend should match or beat the MLP here: gnn {gnn} vs mlp {mlp}"
    );
    // Both backends must clearly beat coin flipping on plain D-MUX.
    assert!(gnn > 0.6, "gnn accuracy {gnn}");
}

/// The GNN backend reports its own attack name (used by result tables) and
/// is deterministic for a fixed seed.
#[test]
fn gnn_backend_name_and_determinism() {
    let attack = MuxLinkAttack::new(MuxLinkConfig::gnn_fast());
    assert_eq!(attack.name(), "muxlink-gnn");

    let original = synth_circuit("d", 10, 4, 110, 5);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
    let run = |seed: u64| {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        attack.attack(&locked, &mut r).key_accuracy
    };
    assert_eq!(run(42), run(42), "same seed must give identical outcomes");
}

/// Adaptive SortPooling (DGCNN's percentile-k rule) must stay at key-accuracy
/// parity with the fixed-k baseline on the small suite: same circuit, same
/// seeds, accuracies within a ±0.25 band and both clearly above coin-flip.
#[test]
fn adaptive_k_config_matches_fixed_k_within_tolerance() {
    let original = synth_circuit("a", 12, 5, 180, 23);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();

    let accuracy = |config: MuxLinkConfig| {
        let mut total = 0.0;
        for seed in 0..2u64 {
            let mut r = ChaCha8Rng::seed_from_u64(31 + seed);
            total += MuxLinkAttack::new(config.clone())
                .attack(&locked, &mut r)
                .key_accuracy;
        }
        total / 2.0
    };
    let fixed = accuracy(MuxLinkConfig::gnn_fast());
    let adaptive = accuracy(MuxLinkConfig::gnn_fast().with_adaptive_k(0.6));
    assert!((0.0..=1.0).contains(&adaptive));
    assert!(
        (adaptive - fixed).abs() <= 0.25,
        "adaptive-k accuracy {adaptive} strayed from fixed-k baseline {fixed}"
    );
    assert!(
        adaptive > 0.55,
        "adaptive-k backend should still beat random guessing, got {adaptive}"
    );
}

/// The adaptive-k attack stays deterministic for a fixed seed (percentile
/// resolution is a pure function of the sampled training subgraphs).
#[test]
fn adaptive_k_attack_is_deterministic() {
    let original = synth_circuit("ad", 10, 4, 110, 19);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
    let attack = MuxLinkAttack::new(MuxLinkConfig::gnn_fast().with_adaptive_k(0.6));
    let run = |seed: u64| {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        attack.attack(&locked, &mut r).key_accuracy
    };
    assert_eq!(run(12), run(12));
}

/// The parallelism/determinism contract at the attack level: the GNN backend
/// must produce the identical outcome — every guess and every confidence —
/// whether it trains serially or fans batches across rayon threads.
#[test]
fn gnn_attack_outcome_is_identical_across_thread_counts() {
    let original = synth_circuit("t", 10, 4, 120, 29);
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
    let run = |threads: usize| {
        let mut r = ChaCha8Rng::seed_from_u64(55);
        MuxLinkAttack::new(MuxLinkConfig::gnn_fast().with_threads(threads)).attack(&locked, &mut r)
    };
    let serial = run(1);
    for threads in [2, 4, 0].into_iter().chain(env_threads()) {
        let parallel = run(threads);
        assert_eq!(
            parallel.key_accuracy, serial.key_accuracy,
            "key accuracy diverged at threads = {threads}"
        );
        assert_eq!(parallel.guesses.len(), serial.guesses.len());
        for (p, s) in parallel.guesses.iter().zip(&serial.guesses) {
            assert_eq!(p.bit, s.bit);
            assert_eq!(
                p.value, s.value,
                "bit {} flipped at {threads} threads",
                p.bit
            );
            assert_eq!(
                p.confidence, s.confidence,
                "bit {} confidence drifted at {threads} threads",
                p.bit
            );
        }
    }
}

/// The streamed-training contract on the structured (ISCAS-shaped) tier:
/// the GNN backend completes on a datapath circuit whose enclosing
/// subgraphs dwarf the random synthetics', and its outcome — every guess
/// and confidence — is bit-for-bit identical across thread counts. This is
/// the attack-level witness of the streamed pipeline on the tier it was
/// built for.
#[test]
fn gnn_attack_on_structured_tier_is_thread_invariant() {
    let original = autolock_circuits::suite_circuit("st1355").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let locked = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();
    // A trimmed config keeps this in unit-test budget; the full-size run is
    // E13's job.
    let config = MuxLinkConfig {
        epochs: 5,
        max_train_samples_per_class: 60,
        ..MuxLinkConfig::gnn_fast()
    };
    let run = |threads: usize| {
        let mut r = ChaCha8Rng::seed_from_u64(77);
        MuxLinkAttack::new(config.clone().with_threads(threads)).attack(&locked, &mut r)
    };
    let serial = run(1);
    assert_eq!(serial.guesses.len(), 12);
    assert!((0.0..=1.0).contains(&serial.key_accuracy));
    for threads in [2, 0].into_iter().chain(env_threads()) {
        let parallel = run(threads);
        assert_eq!(parallel.key_accuracy, serial.key_accuracy);
        for (p, s) in parallel.guesses.iter().zip(&serial.guesses) {
            assert_eq!(
                (p.bit, p.value, p.confidence),
                (s.bit, s.value, s.confidence)
            );
        }
    }
}

/// Full-tier shape smoke: the streamed GNN backend survives the ~11k-gate
/// `xl11k` member end to end. Gated behind `AUTOLOCK_SUITE_SCALE=full`
/// (nightly / manual dispatch) — at quick scale the test is a no-op, so CI's
/// default budget is untouched.
#[test]
fn gnn_attack_xl11k_shape_smoke_at_full_scale() {
    if autolock_circuits::SuiteScale::from_env() != autolock_circuits::SuiteScale::Full {
        return;
    }
    let original = autolock_circuits::suite_circuit("xl11k").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let locked = DMuxLocking::default()
        .lock(&original, 16, &mut rng)
        .unwrap();
    // Minimal epochs/samples: this is a shape/memory smoke, not an
    // accuracy measurement.
    let config = MuxLinkConfig {
        epochs: 2,
        max_train_samples_per_class: 40,
        ..MuxLinkConfig::gnn_fast()
    };
    let mut r = ChaCha8Rng::seed_from_u64(5);
    let outcome = MuxLinkAttack::new(config).attack(&locked, &mut r);
    assert_eq!(outcome.guesses.len(), 16);
    assert!((0.0..=1.0).contains(&outcome.key_accuracy));
}

/// The full-strength GNN config also runs and stays within bounds (smoke
/// test for the heavier configuration used by experiments).
#[test]
fn gnn_full_config_smoke() {
    let original = synth_circuit("s", 10, 4, 100, 2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
    let mut r = ChaCha8Rng::seed_from_u64(6);
    let outcome = MuxLinkAttack::new(MuxLinkConfig::gnn()).attack(&locked, &mut r);
    assert_eq!(outcome.guesses.len(), 6);
    assert!((0.0..=1.0).contains(&outcome.key_accuracy));
    assert!(outcome
        .guesses
        .iter()
        .all(|g| (0.5..=1.0).contains(&g.confidence)));
}
