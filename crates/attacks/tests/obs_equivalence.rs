//! Observability must be write-only: enabling the registry may record
//! timings and counters but can never steer an attack. This test pins the
//! bit-for-bit contract for both MuxLink backends — the full
//! [`AttackOutcome`] (wall clock excluded) is compared with `==`, so a
//! single flipped confidence bit or reordered guess fails it.
//!
//! Everything runs in one `#[test]`: the obs registry is process-global, so
//! the enabled and disabled runs must not interleave with other tests.
//!
//! [`AttackOutcome`]: autolock_attacks::AttackOutcome

use autolock_attacks::{AttackOutcome, KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_circuits::synth_circuit;
use autolock_locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Zeroes the one legitimately nondeterministic field so `==` compares
/// everything else.
fn scrub_wall_clock(mut outcome: AttackOutcome) -> AttackOutcome {
    outcome.runtime_ms = 0;
    outcome
}

#[test]
fn attack_outcomes_are_bit_identical_with_obs_on_and_off() {
    let original = synth_circuit("obs_eq", 12, 5, 160, 77);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let locked = DMuxLocking::default()
        .lock(&original, 10, &mut rng)
        .unwrap();

    let run_both_backends = || {
        let mut out = Vec::new();
        for config in [MuxLinkConfig::fast(), MuxLinkConfig::gnn_fast()] {
            let mut r = ChaCha8Rng::seed_from_u64(21);
            out.push(scrub_wall_clock(
                MuxLinkAttack::new(config).attack(&locked, &mut r),
            ));
        }
        out
    };

    // Baseline: registry disabled (the process default).
    assert!(!autolock_obs::enabled(), "registry must start disabled");
    let silent = run_both_backends();

    // Identical runs with the registry recording.
    autolock_obs::reset();
    autolock_obs::enable();
    let observed = run_both_backends();
    let snapshot = autolock_obs::drain();
    autolock_obs::disable();

    assert_eq!(
        silent, observed,
        "enabling observability changed an attack outcome"
    );

    if autolock_obs::is_noop() {
        return; // compiled-out build: nothing should have been recorded
    }
    // The observed runs must actually have been traced — otherwise this
    // test would pass vacuously with dead instrumentation.
    assert!(
        snapshot
            .events
            .iter()
            .any(|e| e.path.starts_with("attack.muxlink")),
        "no MuxLink spans recorded: {:?}",
        snapshot.spans
    );
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, value)| name == "attack.muxlink_runs" && *value == 2),
        "run counter missing: {:?}",
        snapshot.counters
    );
}
