//! Baseline attacks used as reference points in the scheme-vs-attack matrix
//! (experiment E4).

use crate::report::{AttackOutcome, KeyGuess};
use crate::KeyRecoveryAttack;
use autolock_locking::{KeyGateProvenance, LockedNetlist};
use autolock_netlist::GateKind;
use rand::{Rng, RngCore};
use std::time::Instant;

/// The weakest possible attack: guess every key bit uniformly at random.
///
/// Its expected accuracy of 0.5 is the floor every scheme comparison is read
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomGuessAttack;

impl KeyRecoveryAttack for RandomGuessAttack {
    fn name(&self) -> &str {
        "random-guess"
    }

    fn attack(&self, locked: &LockedNetlist, rng: &mut dyn RngCore) -> AttackOutcome {
        let start = Instant::now();
        let guesses = (0..locked.key_len())
            .map(|bit| KeyGuess {
                bit,
                value: rng.gen(),
                confidence: 0.5,
            })
            .collect();
        AttackOutcome::from_guesses(
            self.name(),
            locked,
            guesses,
            0.75,
            start.elapsed().as_millis(),
        )
    }
}

/// The classic structural attack on naive XOR/XNOR locking: the inserted gate
/// type leaks the key bit (an XOR key gate is transparent for key 0, an XNOR
/// for key 1). Provenance is only used to locate the key gates — the decision
/// itself reads the public gate type, which is what a real attacker does.
///
/// On schemes without XOR key gates this attack degenerates to coin flips.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorStructuralAttack;

impl KeyRecoveryAttack for XorStructuralAttack {
    fn name(&self) -> &str {
        "xor-structural"
    }

    fn attack(&self, locked: &LockedNetlist, rng: &mut dyn RngCore) -> AttackOutcome {
        let start = Instant::now();
        let netlist = locked.netlist();
        let key_inputs = netlist.key_inputs();
        let mut guesses: Vec<KeyGuess> = Vec::with_capacity(locked.key_len());
        for (bit, &key_input) in key_inputs.iter().enumerate() {
            // Find a gate that reads this key input and is an XOR/XNOR.
            let mut guess = None;
            for (_, gate) in netlist.iter() {
                if !gate.fanin.contains(&key_input) {
                    continue;
                }
                match gate.kind {
                    GateKind::Xor => {
                        guess = Some((false, 1.0));
                        break;
                    }
                    GateKind::Xnor => {
                        guess = Some((true, 1.0));
                        break;
                    }
                    _ => {}
                }
            }
            let (value, confidence) = guess.unwrap_or((rng.gen(), 0.5));
            guesses.push(KeyGuess {
                bit,
                value,
                confidence,
            });
        }
        AttackOutcome::from_guesses(
            self.name(),
            locked,
            guesses,
            0.75,
            start.elapsed().as_millis(),
        )
    }
}

/// Reports whether a locked netlist contains MUX key gates (used by harnesses
/// to decide which attacks are applicable).
pub fn has_mux_key_gates(locked: &LockedNetlist) -> bool {
    locked
        .provenance()
        .iter()
        .any(|p| matches!(p, KeyGateProvenance::MuxPair { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::synth_circuit;
    use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn random_guess_is_near_half_on_long_keys() {
        let original = synth_circuit("t", 12, 5, 300, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = DMuxLocking::default()
            .lock(&original, 64, &mut rng)
            .unwrap();
        let outcome = RandomGuessAttack.attack(&locked, &mut rng);
        assert!(outcome.key_accuracy > 0.25 && outcome.key_accuracy < 0.75);
        assert_eq!(outcome.attack, "random-guess");
    }

    #[test]
    fn xor_structural_attack_breaks_rll_completely() {
        let original = synth_circuit("t", 10, 4, 150, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let locked = XorLocking::default().lock(&original, 16, &mut rng).unwrap();
        let outcome = XorStructuralAttack.attack(&locked, &mut rng);
        assert_eq!(outcome.key_accuracy, 1.0);
        assert_eq!(outcome.confident_accuracy, Some(1.0));
    }

    #[test]
    fn xor_structural_attack_is_uninformed_on_dmux() {
        let original = synth_circuit("t", 10, 4, 150, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = DMuxLocking::default()
            .lock(&original, 32, &mut rng)
            .unwrap();
        let outcome = XorStructuralAttack.attack(&locked, &mut rng);
        // All guesses are coin flips.
        assert!(outcome.guesses.iter().all(|g| g.confidence == 0.5));
        assert!(has_mux_key_gates(&locked));
    }
}
