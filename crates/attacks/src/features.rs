//! Link-feature extraction for the MuxLink-style attack.
//!
//! The published MuxLink feeds the *enclosing subgraph* of each candidate link
//! into a DGCNN. This reproduction extracts a fixed-length feature vector from
//! the same enclosing subgraph — structural statistics (sizes, degrees,
//! distances, DRNL-label histogram) plus gate-type information — and feeds it
//! to an MLP. The discriminative signal is the same: what the logic
//! *surrounding* a candidate connection looks like.

use autolock_netlist::graph::{CsrGraph, EnclosingSubgraph};
use autolock_netlist::{GateId, GateKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Longest-path logic levels of the *visible* part of a locked netlist: edges
/// incident to `hidden` gates are ignored. Hidden gates keep level 0.
///
/// True drivers sit at a lower level than their sinks, which makes the level
/// difference a strong link-prediction feature; the extractor consumes the
/// result of this function.
pub fn visible_levels(netlist: &Netlist, hidden: &HashSet<GateId>) -> Vec<usize> {
    // Kahn-style longest path over the visible sub-DAG.
    let mut indeg = vec![0usize; netlist.len()];
    for (id, gate) in netlist.iter() {
        if hidden.contains(&id) {
            continue;
        }
        indeg[id.index()] = gate.fanin.iter().filter(|f| !hidden.contains(f)).count();
    }
    let mut levels = vec![0usize; netlist.len()];
    let mut queue: std::collections::VecDeque<GateId> = netlist
        .ids()
        .filter(|id| !hidden.contains(id) && indeg[id.index()] == 0)
        .collect();
    let fanouts = netlist.fanouts();
    while let Some(id) = queue.pop_front() {
        for &sink in &fanouts[id.index()] {
            if hidden.contains(&sink) {
                continue;
            }
            levels[sink.index()] = levels[sink.index()].max(levels[id.index()] + 1);
            indeg[sink.index()] -= 1;
            if indeg[sink.index()] == 0 {
                queue.push_back(sink);
            }
        }
    }
    levels
}

/// Which features the extractor emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Full MuxLink-style features: enclosing-subgraph structure + gate types.
    Full,
    /// Only the gate types of the two link endpoints ("locality-only").
    ///
    /// This models the pre-MuxLink learning attacks (SnapShot/OMLA style)
    /// that judge a key-gate location purely from its local gate-type
    /// composition — exactly the attack class D-MUX defeats by construction.
    LocalityOnly,
}

/// Configuration of the feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFeatureConfig {
    /// Number of hops of the enclosing subgraph.
    pub hops: usize,
    /// Cap on DRNL labels; larger labels are clipped into the last bucket.
    pub max_drnl: usize,
    /// Feature mode.
    pub mode: FeatureMode,
}

impl Default for LinkFeatureConfig {
    fn default() -> Self {
        LinkFeatureConfig {
            hops: 2,
            max_drnl: 8,
            mode: FeatureMode::Full,
        }
    }
}

/// Extracts fixed-length feature vectors for candidate links of a netlist.
#[derive(Debug, Clone)]
pub struct LinkFeatureExtractor {
    config: LinkFeatureConfig,
}

impl LinkFeatureExtractor {
    /// Creates an extractor.
    pub fn new(config: LinkFeatureConfig) -> Self {
        LinkFeatureExtractor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkFeatureConfig {
        &self.config
    }

    /// Dimensionality of the emitted feature vectors.
    pub fn dim(&self) -> usize {
        match self.config.mode {
            FeatureMode::LocalityOnly => 2 * GateKind::NUM_CODES,
            FeatureMode::Full => {
                // endpoint one-hots + endpoint degrees/fanio + pair stats +
                // level features + subgraph stats + kind histogram + drnl
                // histogram
                2 * GateKind::NUM_CODES + 6 + 5 + 4 + 4 + GateKind::NUM_CODES + self.config.max_drnl
            }
        }
    }

    /// Extracts the feature vector of the candidate link `(driver, sink)`.
    ///
    /// With `drop_link` the candidate link itself is treated as absent from
    /// `graph` (positive training examples hide the known link before
    /// looking at its neighbourhood) — the exclusion is threaded through
    /// every feature instead of cloning the graph, so large-circuit attacks
    /// stay memory-lean. `levels` is the per-gate logic level of the
    /// visible netlist (see [`visible_levels`]); `netlist` is only used for
    /// gate kinds and fan-in counts.
    pub fn extract(
        &self,
        netlist: &Netlist,
        graph: &CsrGraph,
        levels: &[usize],
        driver: GateId,
        sink: GateId,
        drop_link: bool,
    ) -> Vec<f64> {
        if self.config.mode == FeatureMode::LocalityOnly {
            // The locality ablation never looks at the neighbourhood; skip
            // the extraction entirely.
            return self.endpoint_one_hots(netlist, driver, sink);
        }
        let sg = graph.enclosing_subgraph(driver, sink, self.config.hops, drop_link);
        self.extract_with_subgraph(netlist, graph, levels, driver, sink, drop_link, &sg)
    }

    /// Gate-kind one-hots of the two endpoints (the features every mode
    /// starts from).
    fn endpoint_one_hots(&self, netlist: &Netlist, driver: GateId, sink: GateId) -> Vec<f64> {
        let mut features = Vec::with_capacity(self.dim());
        for id in [driver, sink] {
            let mut v = vec![0.0; GateKind::NUM_CODES];
            v[netlist.gate(id).kind.code()] = 1.0;
            features.extend(v);
        }
        features
    }

    /// [`LinkFeatureExtractor::extract`] with a pre-extracted (possibly
    /// cached) enclosing subgraph of the same `(driver, sink, drop_link)`
    /// query.
    #[allow(clippy::too_many_arguments)]
    pub fn extract_with_subgraph(
        &self,
        netlist: &Netlist,
        graph: &CsrGraph,
        levels: &[usize],
        driver: GateId,
        sink: GateId,
        drop_link: bool,
        sg: &EnclosingSubgraph,
    ) -> Vec<f64> {
        let mut features = self.endpoint_one_hots(netlist, driver, sink);
        if self.config.mode == FeatureMode::LocalityOnly {
            debug_assert_eq!(features.len(), self.dim());
            return features;
        }

        // Endpoint structure. With `drop_link`, the candidate edge (if it
        // exists) is subtracted from both endpoint degrees — numerically
        // identical to extracting from a graph with the edge removed.
        let linked = drop_link && graph.has_edge(driver, sink);
        let deg_u = (graph.degree(driver) - usize::from(linked)) as f64;
        let deg_v = (graph.degree(sink) - usize::from(linked)) as f64;
        let fanin_v = netlist.gate(sink).fanin.len() as f64;
        // True directed fan-out of the driver within the visible graph: count
        // the neighbours that actually read `driver` as a fan-in. Restricting
        // to `graph` keeps the feature consistent with the attack's view
        // (hidden gates and the dropped candidate link are excluded).
        let fanout_u = graph
            .neighbors(driver)
            .iter()
            .filter(|&&nb| !(linked && nb == sink) && netlist.gate(nb).fanin.contains(&driver))
            .count() as f64;
        features.push(deg_u);
        features.push(deg_v);
        features.push(fanin_v);
        features.push(fanout_u);
        features.push((deg_u - deg_v).abs());
        features.push(deg_u * deg_v);

        // Pairwise link-prediction heuristics. Dropping the (driver, sink)
        // edge changes neither endpoint's *other* neighbours, so the common
        // count carries over; the Jaccard denominator uses the adjusted
        // degrees.
        let common = graph.common_neighbors(driver, sink) as f64;
        let union = deg_u + deg_v - common;
        let jaccard = if union > 0.0 { common / union } else { 0.0 };
        // Probe the endpoint distance well beyond the enclosing-subgraph
        // radius: on larger netlists both the true driver (via alternate
        // paths) and a decoy can exceed 2*hops, and saturating that early
        // erases exactly the near/far contrast that separates them.
        let dist_budget = (self.config.hops * 4).max(8);
        let dist = {
            let skip = if linked { Some((driver, sink)) } else { None };
            let d = graph.bfs_distances_skip(driver, dist_budget, skip);
            d.get(&sink)
                .copied()
                .map(|x| x as f64)
                .unwrap_or((dist_budget + 1) as f64)
        };
        features.push(common);
        features.push(jaccard);
        features.push(dist);
        features.push(if dist <= self.config.hops as f64 {
            1.0
        } else {
            0.0
        });
        features.push(common / (deg_u + deg_v + 1.0));

        // Logic-level features: a true driver sits below its sink, usually by
        // a small number of levels.
        let lvl_u = levels.get(driver.index()).copied().unwrap_or(0) as f64;
        let lvl_v = levels.get(sink.index()).copied().unwrap_or(0) as f64;
        let max_level = levels.iter().copied().max().unwrap_or(1).max(1) as f64;
        features.push(lvl_u / max_level);
        features.push(lvl_v / max_level);
        features.push(lvl_v - lvl_u);
        features.push(if lvl_u < lvl_v { 1.0 } else { 0.0 });

        // Enclosing-subgraph statistics.
        let n = sg.nodes.len() as f64;
        let m = sg.edges.len() as f64;
        features.push(n);
        features.push(m);
        features.push(if n > 0.0 { m / n } else { 0.0 });
        features.push(
            sg.dist_u
                .iter()
                .zip(&sg.dist_v)
                .filter(|(&a, &b)| a != usize::MAX && b != usize::MAX)
                .count() as f64
                / n.max(1.0),
        );

        // Gate-kind histogram of the subgraph (normalized).
        let mut kinds = vec![0.0; GateKind::NUM_CODES];
        for &node in &sg.nodes {
            kinds[netlist.gate(node).kind.code()] += 1.0;
        }
        for k in kinds.iter_mut() {
            *k /= n.max(1.0);
        }
        features.extend(kinds);

        // DRNL-label histogram (normalized, clipped).
        let mut drnl = vec![0.0; self.config.max_drnl];
        for &label in &sg.drnl {
            let bucket = label.min(self.config.max_drnl - 1);
            drnl[bucket] += 1.0;
        }
        for d in drnl.iter_mut() {
            *d /= n.max(1.0);
        }
        features.extend(drnl);

        debug_assert_eq!(features.len(), self.dim());
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::c17;

    fn no_hidden(nl: &Netlist) -> Vec<usize> {
        visible_levels(nl, &HashSet::new())
    }

    #[test]
    fn full_features_have_declared_dimension() {
        let nl = c17();
        let graph = CsrGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let u = nl.find("G10gat").unwrap();
        let v = nl.find("G22gat").unwrap();
        let f = ex.extract(&nl, &graph, &levels, u, v, false);
        assert_eq!(f.len(), ex.dim());
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn locality_only_features_are_pure_type_one_hots() {
        let nl = c17();
        let graph = CsrGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig {
            mode: FeatureMode::LocalityOnly,
            ..Default::default()
        });
        let u = nl.find("G1gat").unwrap();
        let v = nl.find("G10gat").unwrap();
        let f = ex.extract(&nl, &graph, &levels, u, v, false);
        assert_eq!(f.len(), 2 * GateKind::NUM_CODES);
        // Exactly two ones (one per endpoint one-hot).
        assert_eq!(f.iter().filter(|&&x| x == 1.0).count(), 2);
        assert_eq!(f.iter().filter(|&&x| x == 0.0).count(), f.len() - 2);
    }

    #[test]
    fn existing_link_and_non_link_have_different_features() {
        let nl = c17();
        let u = nl.find("G10gat").unwrap();
        let v = nl.find("G22gat").unwrap();
        let far = nl.find("G6gat").unwrap();
        let graph = CsrGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        // Hide the true link before extraction (as the attack does).
        let f_true = ex.extract(&nl, &graph, &levels, u, v, true);
        let f_false = ex.extract(&nl, &graph, &levels, far, v, false);
        assert_ne!(f_true, f_false);
    }

    #[test]
    fn drop_link_matches_extraction_from_edge_removed_graph() {
        // The no-clone drop_link path must produce exactly the features the
        // old clone-the-graph path produced: build a netlist *without* the
        // candidate wire and compare against drop_link on the full one.
        let nl = c17();
        let u = nl.find("G16gat").unwrap();
        let v = nl.find("G23gat").unwrap();
        let graph = CsrGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let dropped = ex.extract(&nl, &graph, &levels, u, v, true);
        // Reference: same netlist with the G16→G23 wire rerouted out of the
        // graph by hiding it via an explicitly-removed-edge CSR build.
        let reference_graph = {
            use autolock_netlist::graph::UndirectedGraph;
            UndirectedGraph::from_netlist_without_edges(&nl, &[(u, v)])
        };
        // Spot-check the structural scalars against the reference graph.
        assert_eq!(
            dropped[2 * GateKind::NUM_CODES] as usize,
            reference_graph.degree(u),
            "driver degree must match the edge-removed graph"
        );
        assert_eq!(
            dropped[2 * GateKind::NUM_CODES + 1] as usize,
            reference_graph.degree(v),
            "sink degree must match the edge-removed graph"
        );
    }

    #[test]
    fn distance_feature_saturates_for_disconnected_pairs() {
        let mut nl = autolock_netlist::Netlist::new("two_islands");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate("x", autolock_netlist::GateKind::Not, vec![a])
            .unwrap();
        let y = nl
            .add_gate("y", autolock_netlist::GateKind::Not, vec![b])
            .unwrap();
        nl.mark_output(x);
        nl.mark_output(y);
        let graph = CsrGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let f = ex.extract(&nl, &graph, &levels, a, y, false);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn visible_levels_respect_hidden_nodes() {
        let nl = c17();
        let g10 = nl.find("G10gat").unwrap();
        let g22 = nl.find("G22gat").unwrap();
        let all = no_hidden(&nl);
        assert_eq!(all[nl.find("G1gat").unwrap().index()], 0);
        assert_eq!(all[g10.index()], 1);
        assert_eq!(all[g22.index()], 3);
        // Hiding G16 shortens G22's visible level (only the G10 path remains).
        let hidden: HashSet<_> = [nl.find("G16gat").unwrap()].into_iter().collect();
        let partial = visible_levels(&nl, &hidden);
        assert_eq!(partial[g22.index()], 2);
    }
}
