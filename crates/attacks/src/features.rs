//! Link-feature extraction for the MuxLink-style attack.
//!
//! The published MuxLink feeds the *enclosing subgraph* of each candidate link
//! into a DGCNN. This reproduction extracts a fixed-length feature vector from
//! the same enclosing subgraph — structural statistics (sizes, degrees,
//! distances, DRNL-label histogram) plus gate-type information — and feeds it
//! to an MLP. The discriminative signal is the same: what the logic
//! *surrounding* a candidate connection looks like.

use autolock_netlist::graph::{enclosing_subgraph, UndirectedGraph};
use autolock_netlist::{GateId, GateKind, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Longest-path logic levels of the *visible* part of a locked netlist: edges
/// incident to `hidden` gates are ignored. Hidden gates keep level 0.
///
/// True drivers sit at a lower level than their sinks, which makes the level
/// difference a strong link-prediction feature; the extractor consumes the
/// result of this function.
pub fn visible_levels(netlist: &Netlist, hidden: &HashSet<GateId>) -> Vec<usize> {
    // Kahn-style longest path over the visible sub-DAG.
    let mut indeg = vec![0usize; netlist.len()];
    for (id, gate) in netlist.iter() {
        if hidden.contains(&id) {
            continue;
        }
        indeg[id.index()] = gate.fanin.iter().filter(|f| !hidden.contains(f)).count();
    }
    let mut levels = vec![0usize; netlist.len()];
    let mut queue: std::collections::VecDeque<GateId> = netlist
        .ids()
        .filter(|id| !hidden.contains(id) && indeg[id.index()] == 0)
        .collect();
    let fanouts = netlist.fanouts();
    while let Some(id) = queue.pop_front() {
        for &sink in &fanouts[id.index()] {
            if hidden.contains(&sink) {
                continue;
            }
            levels[sink.index()] = levels[sink.index()].max(levels[id.index()] + 1);
            indeg[sink.index()] -= 1;
            if indeg[sink.index()] == 0 {
                queue.push_back(sink);
            }
        }
    }
    levels
}

/// Which features the extractor emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureMode {
    /// Full MuxLink-style features: enclosing-subgraph structure + gate types.
    Full,
    /// Only the gate types of the two link endpoints ("locality-only").
    ///
    /// This models the pre-MuxLink learning attacks (SnapShot/OMLA style)
    /// that judge a key-gate location purely from its local gate-type
    /// composition — exactly the attack class D-MUX defeats by construction.
    LocalityOnly,
}

/// Configuration of the feature extractor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFeatureConfig {
    /// Number of hops of the enclosing subgraph.
    pub hops: usize,
    /// Cap on DRNL labels; larger labels are clipped into the last bucket.
    pub max_drnl: usize,
    /// Feature mode.
    pub mode: FeatureMode,
}

impl Default for LinkFeatureConfig {
    fn default() -> Self {
        LinkFeatureConfig {
            hops: 2,
            max_drnl: 8,
            mode: FeatureMode::Full,
        }
    }
}

/// Extracts fixed-length feature vectors for candidate links of a netlist.
#[derive(Debug, Clone)]
pub struct LinkFeatureExtractor {
    config: LinkFeatureConfig,
}

impl LinkFeatureExtractor {
    /// Creates an extractor.
    pub fn new(config: LinkFeatureConfig) -> Self {
        LinkFeatureExtractor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkFeatureConfig {
        &self.config
    }

    /// Dimensionality of the emitted feature vectors.
    pub fn dim(&self) -> usize {
        match self.config.mode {
            FeatureMode::LocalityOnly => 2 * GateKind::NUM_CODES,
            FeatureMode::Full => {
                // endpoint one-hots + endpoint degrees/fanio + pair stats +
                // level features + subgraph stats + kind histogram + drnl
                // histogram
                2 * GateKind::NUM_CODES + 6 + 5 + 4 + 4 + GateKind::NUM_CODES + self.config.max_drnl
            }
        }
    }

    /// Extracts the feature vector of the candidate link `(driver, sink)`.
    ///
    /// `graph` must already have the candidate link removed (for existing
    /// links) or simply not contain it (for negative samples); `levels` is the
    /// per-gate logic level of the visible netlist (see [`visible_levels`]);
    /// `netlist` is only used for gate kinds and fan-in counts.
    pub fn extract(
        &self,
        netlist: &Netlist,
        graph: &UndirectedGraph,
        levels: &[usize],
        driver: GateId,
        sink: GateId,
    ) -> Vec<f64> {
        let mut features = Vec::with_capacity(self.dim());

        // Gate-kind one-hots of the two endpoints (always present).
        let mut one_hot = |id: GateId| {
            let mut v = vec![0.0; GateKind::NUM_CODES];
            v[netlist.gate(id).kind.code()] = 1.0;
            features.extend(v);
        };
        one_hot(driver);
        one_hot(sink);

        if self.config.mode == FeatureMode::LocalityOnly {
            debug_assert_eq!(features.len(), self.dim());
            return features;
        }

        // Endpoint structure.
        let deg_u = graph.degree(driver) as f64;
        let deg_v = graph.degree(sink) as f64;
        let fanin_v = netlist.gate(sink).fanin.len() as f64;
        // True directed fan-out of the driver within the visible graph: count
        // the neighbours that actually read `driver` as a fan-in. Restricting
        // to `graph` keeps the feature consistent with the attack's view
        // (hidden gates and the removed candidate link are excluded).
        let fanout_u = graph
            .neighbors(driver)
            .iter()
            .filter(|&&nb| netlist.gate(nb).fanin.contains(&driver))
            .count() as f64;
        features.push(deg_u);
        features.push(deg_v);
        features.push(fanin_v);
        features.push(fanout_u);
        features.push((deg_u - deg_v).abs());
        features.push(deg_u * deg_v);

        // Pairwise link-prediction heuristics.
        let common = graph.common_neighbors(driver, sink) as f64;
        let jaccard = graph.jaccard(driver, sink);
        // Probe the endpoint distance well beyond the enclosing-subgraph
        // radius: on larger netlists both the true driver (via alternate
        // paths) and a decoy can exceed 2*hops, and saturating that early
        // erases exactly the near/far contrast that separates them.
        let dist_budget = (self.config.hops * 4).max(8);
        let dist = {
            let d = graph.bfs_distances(driver, dist_budget);
            d.get(&sink)
                .copied()
                .map(|x| x as f64)
                .unwrap_or((dist_budget + 1) as f64)
        };
        features.push(common);
        features.push(jaccard);
        features.push(dist);
        features.push(if dist <= self.config.hops as f64 {
            1.0
        } else {
            0.0
        });
        features.push(common / (deg_u + deg_v + 1.0));

        // Logic-level features: a true driver sits below its sink, usually by
        // a small number of levels.
        let lvl_u = levels.get(driver.index()).copied().unwrap_or(0) as f64;
        let lvl_v = levels.get(sink.index()).copied().unwrap_or(0) as f64;
        let max_level = levels.iter().copied().max().unwrap_or(1).max(1) as f64;
        features.push(lvl_u / max_level);
        features.push(lvl_v / max_level);
        features.push(lvl_v - lvl_u);
        features.push(if lvl_u < lvl_v { 1.0 } else { 0.0 });

        // Enclosing-subgraph statistics.
        let sg = enclosing_subgraph(graph, driver, sink, self.config.hops);
        let n = sg.nodes.len() as f64;
        let m = sg.edges.len() as f64;
        features.push(n);
        features.push(m);
        features.push(if n > 0.0 { m / n } else { 0.0 });
        features.push(
            sg.dist_u
                .iter()
                .zip(&sg.dist_v)
                .filter(|(&a, &b)| a != usize::MAX && b != usize::MAX)
                .count() as f64
                / n.max(1.0),
        );

        // Gate-kind histogram of the subgraph (normalized).
        let mut kinds = vec![0.0; GateKind::NUM_CODES];
        for &node in &sg.nodes {
            kinds[netlist.gate(node).kind.code()] += 1.0;
        }
        for k in kinds.iter_mut() {
            *k /= n.max(1.0);
        }
        features.extend(kinds);

        // DRNL-label histogram (normalized, clipped).
        let mut drnl = vec![0.0; self.config.max_drnl];
        for &label in &sg.drnl {
            let bucket = label.min(self.config.max_drnl - 1);
            drnl[bucket] += 1.0;
        }
        for d in drnl.iter_mut() {
            *d /= n.max(1.0);
        }
        features.extend(drnl);

        debug_assert_eq!(features.len(), self.dim());
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::c17;
    use autolock_netlist::graph::UndirectedGraph;

    fn no_hidden(nl: &Netlist) -> Vec<usize> {
        visible_levels(nl, &HashSet::new())
    }

    #[test]
    fn full_features_have_declared_dimension() {
        let nl = c17();
        let graph = UndirectedGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let u = nl.find("G10gat").unwrap();
        let v = nl.find("G22gat").unwrap();
        let f = ex.extract(&nl, &graph, &levels, u, v);
        assert_eq!(f.len(), ex.dim());
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn locality_only_features_are_pure_type_one_hots() {
        let nl = c17();
        let graph = UndirectedGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig {
            mode: FeatureMode::LocalityOnly,
            ..Default::default()
        });
        let u = nl.find("G1gat").unwrap();
        let v = nl.find("G10gat").unwrap();
        let f = ex.extract(&nl, &graph, &levels, u, v);
        assert_eq!(f.len(), 2 * GateKind::NUM_CODES);
        // Exactly two ones (one per endpoint one-hot).
        assert_eq!(f.iter().filter(|&&x| x == 1.0).count(), 2);
        assert_eq!(f.iter().filter(|&&x| x == 0.0).count(), f.len() - 2);
    }

    #[test]
    fn existing_link_and_non_link_have_different_features() {
        let nl = c17();
        let u = nl.find("G10gat").unwrap();
        let v = nl.find("G22gat").unwrap();
        let far = nl.find("G6gat").unwrap();
        // Remove the true link before extraction (as the attack does).
        let graph = UndirectedGraph::from_netlist_without_edges(&nl, &[(u, v)]);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let f_true = ex.extract(&nl, &graph, &levels, u, v);
        let f_false = ex.extract(&nl, &graph, &levels, far, v);
        assert_ne!(f_true, f_false);
    }

    #[test]
    fn distance_feature_saturates_for_disconnected_pairs() {
        let mut nl = autolock_netlist::Netlist::new("two_islands");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl
            .add_gate("x", autolock_netlist::GateKind::Not, vec![a])
            .unwrap();
        let y = nl
            .add_gate("y", autolock_netlist::GateKind::Not, vec![b])
            .unwrap();
        nl.mark_output(x);
        nl.mark_output(y);
        let graph = UndirectedGraph::from_netlist(&nl);
        let levels = no_hidden(&nl);
        let ex = LinkFeatureExtractor::new(LinkFeatureConfig::default());
        let f = ex.extract(&nl, &graph, &levels, a, y);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn visible_levels_respect_hidden_nodes() {
        let nl = c17();
        let g10 = nl.find("G10gat").unwrap();
        let g22 = nl.find("G22gat").unwrap();
        let all = no_hidden(&nl);
        assert_eq!(all[nl.find("G1gat").unwrap().index()], 0);
        assert_eq!(all[g10.index()], 1);
        assert_eq!(all[g22.index()], 3);
        // Hiding G16 shortens G22's visible level (only the G10 path remains).
        let hidden: HashSet<_> = [nl.find("G16gat").unwrap()].into_iter().collect();
        let partial = visible_levels(&nl, &hidden);
        assert_eq!(partial[g22.index()], 2);
    }
}
