//! Attack suite for the AutoLock reproduction.
//!
//! Three families of attacks are implemented, covering the threat models the
//! AutoLock paper discusses:
//!
//! * [`MuxLinkAttack`] — the oracle-less, ML-based link-prediction attack
//!   (MuxLink, DATE 2022) with two selectable backends
//!   ([`MuxLinkBackend`]): a from-scratch feature extractor + bagged
//!   [`autolock_mlcore`] MLP ensemble, or the paper-faithful DGCNN from
//!   [`autolock_gnn`] operating on raw enclosing subgraphs. This is the
//!   attack AutoLock's genetic algorithm uses as its fitness oracle (either
//!   backend can serve as the adversary).
//! * [`SatAttack`] — the classic oracle-guided SAT attack (Subramanyan et
//!   al.), built on the [`autolock_satsolver`] CDCL solver. Used by the
//!   multi-objective experiments (E5, E8).
//! * Baselines: [`RandomGuessAttack`] and the locality-only variant of
//!   MuxLink ([`FeatureMode::LocalityOnly`]), which model the pre-MuxLink
//!   structural attacks that D-MUX was designed to resist (E4).
//!
//! All oracle-less attacks implement [`KeyRecoveryAttack`]; the SAT attack has
//! its own entry point because it additionally needs an I/O oracle (we use the
//! original netlist as the oracle, standing in for an unlocked chip).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod baselines;
mod cache;
mod features;
mod muxlink;
mod report;
mod sat;

pub use autolock_gnn::SortPoolK;
pub use baselines::{has_mux_key_gates, RandomGuessAttack, XorStructuralAttack};
pub use cache::{netlist_fingerprint, CacheStats, SubgraphCache};
pub use features::{visible_levels, FeatureMode, LinkFeatureConfig, LinkFeatureExtractor};
pub use muxlink::{MuxCandidate, MuxLinkAttack, MuxLinkBackend, MuxLinkConfig, TrainedLinkModel};
pub use report::{AttackOutcome, KeyGuess};
pub use sat::{
    ResumableSatAttack, SatAttack, SatAttackCheckpoint, SatAttackConfig, SatAttackOutcome,
    SatAttackState,
};

use autolock_locking::LockedNetlist;
use rand::RngCore;

/// An oracle-less key-recovery attack: it sees only the locked netlist.
pub trait KeyRecoveryAttack {
    /// Short, stable identifier used in result tables.
    fn name(&self) -> &str;

    /// Runs the attack and returns its key guess together with bookkeeping.
    fn attack(&self, locked: &LockedNetlist, rng: &mut dyn RngCore) -> AttackOutcome;
}
