//! The oracle-guided SAT attack on logic locking.
//!
//! The SAT attack (Subramanyan, Ray, Malik — HOST 2015) assumes the attacker
//! has (a) the locked netlist and (b) a working unlocked chip used as an
//! input/output oracle. It repeatedly finds *distinguishing input patterns*
//! (DIPs) — inputs for which two different keys produce different outputs —
//! queries the oracle on them, and constrains the key space with the observed
//! responses until only functionally correct keys remain.
//!
//! This reproduction uses the original netlist as the oracle (the standard
//! substitution when no silicon is available) and the from-scratch CDCL
//! solver from `autolock-satsolver`.

use autolock_locking::{Key, LockedNetlist};
use autolock_netlist::{GateId, Netlist};
use autolock_satsolver::{CircuitEncoder, Lit, SolveBudget, SolveResult, Solver};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of the SAT attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatAttackConfig {
    /// Maximum number of DIP iterations before giving up.
    pub max_iterations: usize,
    /// Maximum wall-clock milliseconds before giving up. Enforced *inside*
    /// every solver call via [`SolveBudget`], so a single hard miter solve
    /// cannot overrun the deadline unboundedly.
    pub timeout_ms: u128,
    /// Optional deterministic work cap: maximum solver propagations per
    /// individual `solve` call. Unlike `timeout_ms` this cuts off at the same
    /// search point on every machine, which is what tests and the service
    /// smoke use to induce reproducible timeouts. `None` = unbounded.
    pub max_propagations_per_solve: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 2000,
            timeout_ms: 60_000,
            max_propagations_per_solve: None,
        }
    }
}

/// Result of a SAT-attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatAttackOutcome {
    /// Scheme that was attacked.
    pub scheme: String,
    /// Design name.
    pub design: String,
    /// Key length.
    pub key_len: usize,
    /// Whether the attack terminated with a provably correct key.
    pub success: bool,
    /// The recovered key (meaningful when `success`).
    pub recovered_key: Key,
    /// Whether the recovered key exactly equals the designer's key. The SAT
    /// attack only guarantees *functional* correctness, so this may be false
    /// even on success (another key implements the same function).
    pub exact_key_match: bool,
    /// Number of distinguishing input patterns (oracle queries) used.
    pub iterations: usize,
    /// Total wall-clock milliseconds.
    pub runtime_ms: u128,
    /// Total SAT conflicts across all solver calls.
    pub solver_conflicts: u64,
    /// `true` if the attack stopped on a budget (iteration cap, `timeout_ms`
    /// deadline, or propagation cap) rather than reaching a verdict. The
    /// other counters still describe the partial run.
    pub gave_up: bool,
}

/// The oracle-guided SAT attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatAttack {
    config: SatAttackConfig,
}

impl SatAttack {
    /// Creates the attack with the given configuration.
    pub fn new(config: SatAttackConfig) -> Self {
        SatAttack { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SatAttackConfig {
        &self.config
    }

    /// Runs the attack against `locked`, using `oracle` (the original,
    /// unlocked design) to answer input/output queries.
    ///
    /// # Panics
    ///
    /// Panics if the oracle and the locked netlist have incompatible
    /// interfaces (different numbers of primary inputs or outputs).
    pub fn attack(&self, locked: &LockedNetlist, oracle: &Netlist) -> SatAttackOutcome {
        let start = Instant::now();
        // Write-only observability: the span/counters record the run but
        // never steer the DIP loop.
        let _span = autolock_obs::span!("attack.sat");
        let netlist = locked.netlist();
        assert_eq!(
            oracle.num_inputs(),
            netlist.num_inputs(),
            "oracle and locked netlist must have the same primary inputs"
        );
        assert_eq!(
            oracle.num_outputs(),
            netlist.num_outputs(),
            "oracle and locked netlist must have the same primary outputs"
        );

        let pis: Vec<GateId> = netlist.inputs();
        let keys: Vec<GateId> = netlist.key_inputs();
        let outs: Vec<GateId> = netlist.outputs().to_vec();

        // Miter solver: two copies (A, B) sharing primary inputs, free keys.
        let mut miter = Solver::new();
        let enc_a = CircuitEncoder::encode(&mut miter, netlist);
        let enc_b = CircuitEncoder::encode(&mut miter, netlist);
        for &pi in &pis {
            enc_a.assert_equal(&mut miter, pi, &enc_b, pi);
        }
        // At least one output differs: OR over per-output XOR indicators.
        let mut diff_lits = Vec::with_capacity(outs.len());
        for &o in &outs {
            let d = Lit::pos(miter.new_var());
            let a = enc_a.lit(o, true);
            let b = enc_b.lit(o, true);
            // d <-> (a xor b)
            miter.add_clause(&[!a, !b, !d]);
            miter.add_clause(&[a, b, !d]);
            miter.add_clause(&[!a, b, d]);
            miter.add_clause(&[a, !b, d]);
            diff_lits.push(d);
        }
        miter.add_clause(&diff_lits);

        // Key solver: accumulates "key must reproduce oracle behaviour on
        // every queried DIP"; its model at the end is the recovered key.
        let mut key_solver = Solver::new();
        let key_vars: Vec<_> = keys.iter().map(|_| key_solver.new_var()).collect();

        let mut iterations = 0usize;
        let mut gave_up = false;

        // The deadline must bound wall clock even when a *single* solve call
        // is slow, so it is pushed down into the CDCL loop as a SolveBudget
        // rather than only being checked between DIP iterations. The
        // propagation cap (when set) makes induced timeouts deterministic.
        let deadline = Instant::now()
            .checked_add(Duration::from_millis(
                u64::try_from(self.config.timeout_ms).unwrap_or(u64::MAX),
            ))
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
        let budget = SolveBudget {
            deadline: Some(deadline),
            max_conflicts: None,
            max_propagations: self.config.max_propagations_per_solve,
        };
        miter.set_budget(budget);
        key_solver.set_budget(budget);

        loop {
            if iterations >= self.config.max_iterations
                || start.elapsed().as_millis() > self.config.timeout_ms
            {
                gave_up = true;
                break;
            }
            match miter.solve() {
                SolveResult::Unsat => break, // no more distinguishing inputs
                SolveResult::Unknown => {
                    // Budget exhausted mid-solve: report a partial run
                    // instead of overrunning the deadline.
                    gave_up = true;
                    break;
                }
                SolveResult::Sat => {
                    // Extract the DIP from copy A's primary inputs.
                    let dip: Vec<bool> = pis
                        .iter()
                        .map(|&pi| miter.value(enc_a.var(pi)).unwrap_or(false))
                        .collect();
                    // Query the oracle.
                    let response = oracle
                        .evaluate(&dip)
                        .expect("oracle evaluation with matching input count");

                    // Constrain both miter key copies and the key solver with
                    // the observed input/output behaviour.
                    for enc in [&enc_a, &enc_b] {
                        Self::add_io_constraint(
                            &mut miter, netlist, enc, &pis, &keys, &outs, &dip, &response,
                        );
                    }
                    Self::add_io_constraint_new_copy(
                        &mut key_solver,
                        netlist,
                        &pis,
                        &keys,
                        &outs,
                        &key_vars,
                        &dip,
                        &response,
                    );
                    iterations += 1;
                }
            }
        }

        // Extract a key consistent with every observed DIP.
        let (success, recovered_key) = if gave_up {
            (false, Key::zeros(keys.len()))
        } else {
            match key_solver.solve() {
                SolveResult::Sat => {
                    let bits: Vec<bool> = key_vars
                        .iter()
                        .map(|&v| key_solver.value(v).unwrap_or(false))
                        .collect();
                    (true, Key::new(bits))
                }
                SolveResult::Unknown => {
                    // Key extraction itself ran out of budget.
                    gave_up = true;
                    (false, Key::zeros(keys.len()))
                }
                SolveResult::Unsat => {
                    // Can only happen with zero iterations and an unsatisfiable
                    // circuit encoding, which validated netlists never produce.
                    (keys.is_empty(), Key::zeros(keys.len()))
                }
            }
        };

        // Publish the summed SolverStats of both solvers to the registry —
        // the `satsolver` layer's wiring into the shared obs surface.
        let miter_stats = miter.stats();
        let key_stats = key_solver.stats();
        autolock_obs::counter("sat.dips").add(iterations as u64);
        autolock_obs::counter("sat.decisions").add(miter_stats.decisions + key_stats.decisions);
        autolock_obs::counter("sat.propagations")
            .add(miter_stats.propagations + key_stats.propagations);
        autolock_obs::counter("sat.conflicts").add(miter_stats.conflicts + key_stats.conflicts);
        autolock_obs::counter("sat.restarts").add(miter_stats.restarts + key_stats.restarts);
        autolock_obs::counter("sat.learned_clauses")
            .add(miter_stats.learned_clauses + key_stats.learned_clauses);

        let exact_key_match = success && &recovered_key == locked.key();
        SatAttackOutcome {
            scheme: locked.scheme().to_string(),
            design: locked.original_name().to_string(),
            key_len: keys.len(),
            success,
            recovered_key,
            exact_key_match,
            iterations,
            runtime_ms: start.elapsed().as_millis(),
            solver_conflicts: miter_stats.conflicts + key_stats.conflicts,
            gave_up,
        }
    }

    /// Adds, to `solver`, a fresh copy of `netlist` whose primary inputs are
    /// fixed to `dip`, whose outputs are fixed to `response`, and whose key
    /// inputs are tied to the key variables of the existing encoder `enc`.
    #[allow(clippy::too_many_arguments)]
    fn add_io_constraint(
        solver: &mut Solver,
        netlist: &Netlist,
        enc: &CircuitEncoder,
        pis: &[GateId],
        keys: &[GateId],
        outs: &[GateId],
        dip: &[bool],
        response: &[bool],
    ) {
        let copy = CircuitEncoder::encode(solver, netlist);
        for (&pi, &value) in pis.iter().zip(dip) {
            copy.assert_value(solver, pi, value);
        }
        for (&o, &value) in outs.iter().zip(response) {
            copy.assert_value(solver, o, value);
        }
        for &k in keys {
            copy.assert_equal(solver, k, enc, k);
        }
    }

    /// Adds an I/O-constrained circuit copy to the key solver, tying its key
    /// inputs to the shared key variables.
    #[allow(clippy::too_many_arguments)]
    fn add_io_constraint_new_copy(
        solver: &mut Solver,
        netlist: &Netlist,
        pis: &[GateId],
        keys: &[GateId],
        outs: &[GateId],
        key_vars: &[autolock_satsolver::Var],
        dip: &[bool],
        response: &[bool],
    ) {
        let copy = CircuitEncoder::encode(solver, netlist);
        for (&pi, &value) in pis.iter().zip(dip) {
            copy.assert_value(solver, pi, value);
        }
        for (&o, &value) in outs.iter().zip(response) {
            copy.assert_value(solver, o, value);
        }
        for (&k, &v) in keys.iter().zip(key_vars) {
            let a = copy.lit(k, true);
            let b = Lit::pos(v);
            solver.add_clause(&[!a, b]);
            solver.add_clause(&[a, !b]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::{c17, suite_circuit, synth_circuit};
    use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};
    use autolock_netlist::equiv;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_recovered_key_is_functional(
        original: &Netlist,
        locked: &LockedNetlist,
        outcome: &SatAttackOutcome,
    ) {
        assert!(outcome.success, "attack should succeed: {outcome:?}");
        let equivalent = equiv::exhaustive_equivalent(
            original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
        )
        .unwrap();
        assert!(equivalent, "recovered key must unlock the design");
    }

    #[test]
    fn sat_attack_breaks_xor_locking_on_c17() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
        assert!(outcome.iterations <= 16);
    }

    #[test]
    fn sat_attack_breaks_dmux_locking_on_c17() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let locked = DMuxLocking::default().lock(&original, 3, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
    }

    #[test]
    fn sat_attack_on_synthetic_circuit() {
        let original = synth_circuit("t", 8, 4, 60, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert!(outcome.success);
        // Functional correctness via random simulation (exhaustive is 2^8 here,
        // still fine, but keep the random path exercised).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ok = equiv::random_equivalent(
            &original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
            8,
            &mut rng,
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let original = synth_circuit("t", 10, 4, 120, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default()
            .lock(&original, 12, &mut rng)
            .unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations: 0,
            timeout_ms: 60_000,
            max_propagations_per_solve: None,
        });
        let outcome = attack.attack(&locked, &original);
        assert!(!outcome.success);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn timeout_bounds_wall_clock_even_mid_solve() {
        // st6288 embeds an array multiplier; its miter is hard enough that a
        // single unbounded miter.solve() runs for minutes (measured: the
        // attack makes <1 DIP iteration per second in release). A tiny
        // timeout must still bound the whole attack, which only works if the
        // deadline is enforced *inside* the CDCL loop.
        let original = suite_circuit("st6288").expect("structured suite member");
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let locked = XorLocking::default().lock(&original, 32, &mut rng).unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations: 5000,
            timeout_ms: 50,
            max_propagations_per_solve: None,
        });
        let start = Instant::now();
        let outcome = attack.attack(&locked, &original);
        let elapsed = start.elapsed();
        assert!(outcome.gave_up, "attack must give up: {outcome:?}");
        assert!(!outcome.success);
        // Generous debug-build bound — still orders of magnitude below the
        // unbounded runtime. The release-mode service smoke in CI checks the
        // tighter small-multiple-of-deadline property.
        assert!(
            elapsed < Duration::from_secs(30),
            "deadline overrun: {elapsed:?}"
        );
    }

    #[test]
    fn propagation_cap_induces_deterministic_give_up() {
        // The machine-independent budget: two identical runs cut off at the
        // same search point and report identical partial stats.
        let original = suite_circuit("st6288").expect("structured suite member");
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            let locked = DMuxLocking::default()
                .lock(&original, 16, &mut rng)
                .unwrap();
            // The iteration cap is a backstop: measured release runs spend
            // millions of propagations per miter solve here, so the 20k cap
            // triggers within the first iterations either way.
            SatAttack::new(SatAttackConfig {
                max_iterations: 30,
                timeout_ms: u128::MAX,
                max_propagations_per_solve: Some(20_000),
            })
            .attack(&locked, &original)
        };
        let a = run();
        let b = run();
        assert!(a.gave_up, "cap must trigger: {a:?}");
        assert!(!a.success);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.solver_conflicts, b.solver_conflicts);
        assert_eq!(a.recovered_key, b.recovered_key);
    }

    #[test]
    fn generous_budget_leaves_attack_unaffected() {
        // A budget far above what c17 needs must not change the result.
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        let outcome = SatAttack::new(SatAttackConfig {
            max_iterations: 2000,
            timeout_ms: 60_000,
            max_propagations_per_solve: Some(10_000_000),
        })
        .attack(&locked, &original);
        assert!(outcome.success);
        assert!(!outcome.gave_up);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
    }

    #[test]
    fn keyless_netlist_trivially_succeeds() {
        let original = c17();
        let locked = LockedNetlist::new(
            original.clone(),
            Key::zeros(0),
            vec![],
            "none",
            original.name(),
        )
        .unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert!(outcome.success);
        assert_eq!(outcome.key_len, 0);
    }
}
