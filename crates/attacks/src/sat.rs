//! The oracle-guided SAT attack on logic locking.
//!
//! The SAT attack (Subramanyan, Ray, Malik — HOST 2015) assumes the attacker
//! has (a) the locked netlist and (b) a working unlocked chip used as an
//! input/output oracle. It repeatedly finds *distinguishing input patterns*
//! (DIPs) — inputs for which two different keys produce different outputs —
//! queries the oracle on them, and constrains the key space with the observed
//! responses until only functionally correct keys remain.
//!
//! This reproduction uses the original netlist as the oracle (the standard
//! substitution when no silicon is available) and the from-scratch CDCL
//! solver from `autolock-satsolver`.

use autolock_evo::Resumable;
use autolock_locking::{Key, LockedNetlist};
use autolock_netlist::{GateId, Netlist};
use autolock_satsolver::{
    CircuitEncoder, Lit, SolveBudget, SolveResult, Solver, SolverSnapshot, Var,
};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Configuration of the SAT attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SatAttackConfig {
    /// Maximum number of DIP iterations before giving up.
    pub max_iterations: usize,
    /// Maximum wall-clock milliseconds before giving up. Enforced *inside*
    /// every solver call via [`SolveBudget`], so a single hard miter solve
    /// cannot overrun the deadline unboundedly.
    pub timeout_ms: u128,
    /// Optional deterministic work cap: maximum solver propagations per
    /// individual `solve` call. Unlike `timeout_ms` this cuts off at the same
    /// search point on every machine, which is what tests and the service
    /// smoke use to induce reproducible timeouts. `None` = unbounded.
    pub max_propagations_per_solve: Option<u64>,
    /// Optional mid-solve checkpoint granule: when set, the active solver
    /// call pauses every this-many conflicts and [`SatAttack::step`] returns,
    /// giving the caller a boundary at which the whole attack state can be
    /// serialized via [`SatAttack::checkpoint`]. Pausing never changes the
    /// search path, so results are identical with or without a granule.
    /// `None` (the default) lets each solve run to its verdict in one step.
    pub checkpoint_conflicts: Option<u64>,
}

impl Default for SatAttackConfig {
    fn default() -> Self {
        SatAttackConfig {
            max_iterations: 2000,
            timeout_ms: 60_000,
            max_propagations_per_solve: None,
            checkpoint_conflicts: None,
        }
    }
}

/// Result of a SAT-attack run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatAttackOutcome {
    /// Scheme that was attacked.
    pub scheme: String,
    /// Design name.
    pub design: String,
    /// Key length.
    pub key_len: usize,
    /// Whether the attack terminated with a provably correct key.
    pub success: bool,
    /// The recovered key (meaningful when `success`).
    pub recovered_key: Key,
    /// Whether the recovered key exactly equals the designer's key. The SAT
    /// attack only guarantees *functional* correctness, so this may be false
    /// even on success (another key implements the same function).
    pub exact_key_match: bool,
    /// Number of distinguishing input patterns (oracle queries) used.
    pub iterations: usize,
    /// Total wall-clock milliseconds.
    pub runtime_ms: u128,
    /// Total SAT conflicts across all solver calls.
    pub solver_conflicts: u64,
    /// `true` if the attack stopped on a budget (iteration cap, `timeout_ms`
    /// deadline, or propagation cap) rather than reaching a verdict. The
    /// other counters still describe the partial run.
    pub gave_up: bool,
}

/// Which stage a stepwise SAT-attack run is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum SatPhase {
    /// Searching the miter for the next distinguishing input pattern.
    Miter,
    /// No more DIPs exist; extracting a consistent key from the key solver.
    KeyExtract,
    /// Terminal: the verdict fields are final.
    Done,
}

/// Live state of a stepwise SAT-attack run.
///
/// Mirrors the `evo::checkpoint` shape: [`SatAttack::init_state`] builds it,
/// [`SatAttack::step`] advances it one bounded unit of work at a time,
/// [`SatAttack::finish`] turns it into a [`SatAttackOutcome`]. Between steps
/// the state can be serialized with [`SatAttack::checkpoint`] and — in
/// another process, after a kill — revived with [`SatAttack::restore`],
/// continuing the run bit-identically, *including* a solve that was paused
/// mid-search via [`SatAttackConfig::checkpoint_conflicts`].
#[derive(Debug, Clone)]
pub struct SatAttackState {
    phase: SatPhase,
    iterations: usize,
    gave_up: bool,
    success: bool,
    key_bits: Vec<bool>,
    miter: Solver,
    key_solver: Solver,
    enc_a: CircuitEncoder,
    enc_b: CircuitEncoder,
    key_vars: Vec<Var>,
    // Interface caches, recomputed on restore (not checkpointed).
    pis: Vec<GateId>,
    keys: Vec<GateId>,
    outs: Vec<GateId>,
    /// Wall-clock anchor. Restarts from zero on [`SatAttack::restore`], so
    /// the `timeout_ms` deadline is per-process-lifetime; deterministic
    /// cutoffs across kills use `max_propagations_per_solve` instead.
    started: Instant,
}

impl SatAttackState {
    /// DIP iterations completed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `true` once the run reached its terminal phase (no `step` will do
    /// further work).
    pub fn is_finished(&self) -> bool {
        self.phase == SatPhase::Done
    }
}

/// A serializable checkpoint of a [`SatAttackState`], including both solver
/// snapshots and the gate→variable maps of the two miter circuit copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SatAttackCheckpoint {
    phase: SatPhase,
    iterations: usize,
    gave_up: bool,
    success: bool,
    key_bits: Vec<bool>,
    miter: SolverSnapshot,
    key_solver: SolverSnapshot,
    enc_a_vars: Vec<Var>,
    enc_b_vars: Vec<Var>,
    key_vars: Vec<Var>,
}

impl SatAttackCheckpoint {
    /// DIP iterations completed when the checkpoint was taken.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// The oracle-guided SAT attack.
#[derive(Debug, Clone, Copy, Default)]
pub struct SatAttack {
    config: SatAttackConfig,
}

impl SatAttack {
    /// Creates the attack with the given configuration.
    pub fn new(config: SatAttackConfig) -> Self {
        SatAttack { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SatAttackConfig {
        &self.config
    }

    /// The solver budget every attack solve runs under: the wall-clock
    /// deadline pushed down into the CDCL loop plus the deterministic
    /// propagation cap.
    fn solve_budget(&self) -> SolveBudget {
        // The deadline must bound wall clock even when a *single* solve call
        // is slow, so it is pushed down into the CDCL loop as a SolveBudget
        // rather than only being checked between DIP iterations. The
        // propagation cap (when set) makes induced timeouts deterministic.
        let deadline = Instant::now()
            .checked_add(Duration::from_millis(
                u64::try_from(self.config.timeout_ms).unwrap_or(u64::MAX),
            ))
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
        SolveBudget {
            deadline: Some(deadline),
            max_conflicts: None,
            max_propagations: self.config.max_propagations_per_solve,
        }
    }

    fn arm(&self, solver: &mut Solver, budget: SolveBudget) {
        solver.set_budget(budget);
        solver.set_pause_granule(self.config.checkpoint_conflicts);
    }

    /// Builds the initial state of a stepwise run: the miter (two circuit
    /// copies sharing primary inputs, free keys, at least one output
    /// different) and the empty key solver.
    ///
    /// # Panics
    ///
    /// Panics if the oracle and the locked netlist have incompatible
    /// interfaces (different numbers of primary inputs or outputs).
    pub fn init_state(&self, locked: &LockedNetlist, oracle: &Netlist) -> SatAttackState {
        let netlist = locked.netlist();
        assert_eq!(
            oracle.num_inputs(),
            netlist.num_inputs(),
            "oracle and locked netlist must have the same primary inputs"
        );
        assert_eq!(
            oracle.num_outputs(),
            netlist.num_outputs(),
            "oracle and locked netlist must have the same primary outputs"
        );

        let pis: Vec<GateId> = netlist.inputs();
        let keys: Vec<GateId> = netlist.key_inputs();
        let outs: Vec<GateId> = netlist.outputs().to_vec();

        // Miter solver: two copies (A, B) sharing primary inputs, free keys.
        let mut miter = Solver::new();
        let enc_a = CircuitEncoder::encode(&mut miter, netlist);
        let enc_b = CircuitEncoder::encode(&mut miter, netlist);
        for &pi in &pis {
            enc_a.assert_equal(&mut miter, pi, &enc_b, pi);
        }
        // At least one output differs: OR over per-output XOR indicators.
        let mut diff_lits = Vec::with_capacity(outs.len());
        for &o in &outs {
            let d = Lit::pos(miter.new_var());
            let a = enc_a.lit(o, true);
            let b = enc_b.lit(o, true);
            // d <-> (a xor b)
            miter.add_clause(&[!a, !b, !d]);
            miter.add_clause(&[a, b, !d]);
            miter.add_clause(&[!a, b, d]);
            miter.add_clause(&[a, !b, d]);
            diff_lits.push(d);
        }
        miter.add_clause(&diff_lits);

        // Key solver: accumulates "key must reproduce oracle behaviour on
        // every queried DIP"; its model at the end is the recovered key.
        let mut key_solver = Solver::new();
        let key_vars: Vec<Var> = keys.iter().map(|_| key_solver.new_var()).collect();

        let budget = self.solve_budget();
        self.arm(&mut miter, budget);
        self.arm(&mut key_solver, budget);

        SatAttackState {
            phase: SatPhase::Miter,
            iterations: 0,
            gave_up: false,
            success: false,
            key_bits: Vec::new(),
            miter,
            key_solver,
            enc_a,
            enc_b,
            key_vars,
            pis,
            keys,
            outs,
            started: Instant::now(),
        }
    }

    /// Serializes the complete state of a stepwise run. Call between
    /// [`SatAttack::step`]s — the returned checkpoint plus the (job-derived)
    /// locked netlist is everything [`SatAttack::restore`] needs.
    pub fn checkpoint(&self, state: &SatAttackState) -> SatAttackCheckpoint {
        SatAttackCheckpoint {
            phase: state.phase,
            iterations: state.iterations,
            gave_up: state.gave_up,
            success: state.success,
            key_bits: state.key_bits.clone(),
            miter: state.miter.snapshot(),
            key_solver: state.key_solver.snapshot(),
            enc_a_vars: state.enc_a.vars().to_vec(),
            enc_b_vars: state.enc_b.vars().to_vec(),
            key_vars: state.key_vars.clone(),
        }
    }

    /// Revives a checkpointed run against the same locked netlist,
    /// continuing bit-identically — a solve that was paused mid-search picks
    /// up at the exact conflict it stopped at. The wall-clock deadline is
    /// re-armed from "now" (rows that must be kill-invariant use the
    /// deterministic propagation cap, not the deadline).
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the checkpoint does
    /// not structurally match `locked` (wrong circuit, torn or corrupt
    /// payload that still deserialized). The caller treats that as a corrupt
    /// checkpoint: quarantine and restart from scratch, never panic.
    pub fn restore(
        &self,
        locked: &LockedNetlist,
        checkpoint: SatAttackCheckpoint,
    ) -> Result<SatAttackState, String> {
        let netlist = locked.netlist();
        let keys: Vec<GateId> = netlist.key_inputs();
        if checkpoint.key_vars.len() != keys.len() {
            return Err(format!(
                "checkpoint has {} key variables for {} key inputs",
                checkpoint.key_vars.len(),
                keys.len()
            ));
        }
        let enc_a = CircuitEncoder::from_vars(netlist, checkpoint.enc_a_vars)?;
        let enc_b = CircuitEncoder::from_vars(netlist, checkpoint.enc_b_vars)?;
        let mut miter = Solver::from_snapshot(checkpoint.miter)?;
        let mut key_solver = Solver::from_snapshot(checkpoint.key_solver)?;
        if miter.num_vars() < 2 * netlist.len() {
            return Err(format!(
                "miter snapshot has {} variables for two copies of {} gates",
                miter.num_vars(),
                netlist.len()
            ));
        }
        let budget = self.solve_budget();
        self.arm(&mut miter, budget);
        self.arm(&mut key_solver, budget);
        Ok(SatAttackState {
            phase: checkpoint.phase,
            iterations: checkpoint.iterations,
            gave_up: checkpoint.gave_up,
            success: checkpoint.success,
            key_bits: checkpoint.key_bits,
            miter,
            key_solver,
            enc_a,
            enc_b,
            key_vars: checkpoint.key_vars,
            pis: netlist.inputs(),
            keys,
            outs: netlist.outputs().to_vec(),
            started: Instant::now(),
        })
    }

    /// Advances the run by one bounded unit of work: one miter solve slice
    /// (a full solve, or up to [`SatAttackConfig::checkpoint_conflicts`]
    /// conflicts of one), one DIP/oracle exchange, or one key-extraction
    /// slice. Returns `true` while more work remains — checkpoint between
    /// calls, then keep stepping.
    pub fn step(
        &self,
        state: &mut SatAttackState,
        locked: &LockedNetlist,
        oracle: &Netlist,
    ) -> bool {
        let netlist = locked.netlist();
        match state.phase {
            SatPhase::Done => false,
            SatPhase::Miter => {
                if state.iterations >= self.config.max_iterations
                    || state.started.elapsed().as_millis() > self.config.timeout_ms
                {
                    state.gave_up = true;
                    state.phase = SatPhase::Done;
                    return false;
                }
                match state.miter.solve() {
                    // Pause boundary: no progress on the verdict, but the
                    // caller may checkpoint here.
                    SolveResult::Paused => true,
                    SolveResult::Unsat => {
                        // No more distinguishing inputs: the accumulated
                        // constraints pin a functionally correct key.
                        state.phase = SatPhase::KeyExtract;
                        true
                    }
                    SolveResult::Unknown => {
                        // Budget exhausted mid-solve: report a partial run
                        // instead of overrunning the deadline.
                        state.gave_up = true;
                        state.phase = SatPhase::Done;
                        false
                    }
                    SolveResult::Sat => {
                        // Extract the DIP from copy A's primary inputs.
                        let dip: Vec<bool> = state
                            .pis
                            .iter()
                            .map(|&pi| state.miter.value(state.enc_a.var(pi)).unwrap_or(false))
                            .collect();
                        // Query the oracle.
                        let response = oracle
                            .evaluate(&dip)
                            .expect("oracle evaluation with matching input count");

                        // Constrain both miter key copies and the key solver
                        // with the observed input/output behaviour.
                        for enc in [&state.enc_a, &state.enc_b] {
                            Self::add_io_constraint(
                                &mut state.miter,
                                netlist,
                                enc,
                                &state.pis,
                                &state.keys,
                                &state.outs,
                                &dip,
                                &response,
                            );
                        }
                        Self::add_io_constraint_new_copy(
                            &mut state.key_solver,
                            netlist,
                            &state.pis,
                            &state.keys,
                            &state.outs,
                            &state.key_vars,
                            &dip,
                            &response,
                        );
                        state.iterations += 1;
                        true
                    }
                }
            }
            SatPhase::KeyExtract => match state.key_solver.solve() {
                SolveResult::Paused => true,
                SolveResult::Sat => {
                    state.key_bits = state
                        .key_vars
                        .iter()
                        .map(|&v| state.key_solver.value(v).unwrap_or(false))
                        .collect();
                    state.success = true;
                    state.phase = SatPhase::Done;
                    false
                }
                SolveResult::Unknown => {
                    // Key extraction itself ran out of budget.
                    state.gave_up = true;
                    state.phase = SatPhase::Done;
                    false
                }
                SolveResult::Unsat => {
                    // Can only happen with zero iterations and an
                    // unsatisfiable circuit encoding, which validated
                    // netlists never produce.
                    state.success = state.key_vars.is_empty();
                    state.phase = SatPhase::Done;
                    false
                }
            },
        }
    }

    /// Consumes a finished state into the attack outcome, publishing the
    /// summed solver stats to the obs registry.
    ///
    /// # Panics
    ///
    /// Panics if the state has not reached its terminal phase (drive
    /// [`SatAttack::step`] until it returns `false` first).
    pub fn finish(&self, state: SatAttackState, locked: &LockedNetlist) -> SatAttackOutcome {
        assert!(
            state.is_finished(),
            "finish requires a finished state (step until it returns false)"
        );
        let (success, recovered_key) = if state.success {
            (true, Key::new(state.key_bits.clone()))
        } else {
            (false, Key::zeros(state.key_vars.len()))
        };

        // Publish the summed SolverStats of both solvers to the registry —
        // the `satsolver` layer's wiring into the shared obs surface.
        let miter_stats = state.miter.stats();
        let key_stats = state.key_solver.stats();
        autolock_obs::counter("sat.dips").add(state.iterations as u64);
        autolock_obs::counter("sat.decisions").add(miter_stats.decisions + key_stats.decisions);
        autolock_obs::counter("sat.propagations")
            .add(miter_stats.propagations + key_stats.propagations);
        autolock_obs::counter("sat.conflicts").add(miter_stats.conflicts + key_stats.conflicts);
        autolock_obs::counter("sat.restarts").add(miter_stats.restarts + key_stats.restarts);
        autolock_obs::counter("sat.learned_clauses")
            .add(miter_stats.learned_clauses + key_stats.learned_clauses);

        let exact_key_match = success && &recovered_key == locked.key();
        SatAttackOutcome {
            scheme: locked.scheme().to_string(),
            design: locked.original_name().to_string(),
            key_len: state.key_vars.len(),
            success,
            recovered_key,
            exact_key_match,
            iterations: state.iterations,
            runtime_ms: state.started.elapsed().as_millis(),
            solver_conflicts: miter_stats.conflicts + key_stats.conflicts,
            gave_up: state.gave_up,
        }
    }

    /// Runs the attack against `locked`, using `oracle` (the original,
    /// unlocked design) to answer input/output queries. Equivalent to
    /// driving [`SatAttack::step`] to completion in one call.
    ///
    /// # Panics
    ///
    /// Panics if the oracle and the locked netlist have incompatible
    /// interfaces (different numbers of primary inputs or outputs).
    pub fn attack(&self, locked: &LockedNetlist, oracle: &Netlist) -> SatAttackOutcome {
        // Write-only observability: the span/counters record the run but
        // never steer the DIP loop.
        let _span = autolock_obs::span!("attack.sat");
        let mut state = self.init_state(locked, oracle);
        while self.step(&mut state, locked, oracle) {}
        self.finish(state, locked)
    }

    /// Adds, to `solver`, a fresh copy of `netlist` whose primary inputs are
    /// fixed to `dip`, whose outputs are fixed to `response`, and whose key
    /// inputs are tied to the key variables of the existing encoder `enc`.
    #[allow(clippy::too_many_arguments)]
    fn add_io_constraint(
        solver: &mut Solver,
        netlist: &Netlist,
        enc: &CircuitEncoder,
        pis: &[GateId],
        keys: &[GateId],
        outs: &[GateId],
        dip: &[bool],
        response: &[bool],
    ) {
        let copy = CircuitEncoder::encode(solver, netlist);
        for (&pi, &value) in pis.iter().zip(dip) {
            copy.assert_value(solver, pi, value);
        }
        for (&o, &value) in outs.iter().zip(response) {
            copy.assert_value(solver, o, value);
        }
        for &k in keys {
            copy.assert_equal(solver, k, enc, k);
        }
    }

    /// Adds an I/O-constrained circuit copy to the key solver, tying its key
    /// inputs to the shared key variables.
    #[allow(clippy::too_many_arguments)]
    fn add_io_constraint_new_copy(
        solver: &mut Solver,
        netlist: &Netlist,
        pis: &[GateId],
        keys: &[GateId],
        outs: &[GateId],
        key_vars: &[autolock_satsolver::Var],
        dip: &[bool],
        response: &[bool],
    ) {
        let copy = CircuitEncoder::encode(solver, netlist);
        for (&pi, &value) in pis.iter().zip(dip) {
            copy.assert_value(solver, pi, value);
        }
        for (&o, &value) in outs.iter().zip(response) {
            copy.assert_value(solver, o, value);
        }
        for (&k, &v) in keys.iter().zip(key_vars) {
            let a = copy.lit(k, true);
            let b = Lit::pos(v);
            solver.add_clause(&[!a, b]);
            solver.add_clause(&[a, !b]);
        }
    }
}

/// The [`Resumable`] form of a SAT attack run: a [`SatAttack`] bundled with
/// the locked netlist and oracle it runs against, so drivers (the service
/// engine) can persist and resume it through the same trait as the GA. One
/// step is one DIP iteration (or one mid-solve pause when
/// [`SatAttackConfig::checkpoint_conflicts`] is set).
pub struct ResumableSatAttack<'a> {
    attack: &'a SatAttack,
    locked: &'a LockedNetlist,
    oracle: &'a Netlist,
}

impl<'a> ResumableSatAttack<'a> {
    /// Bundles an attack with its target and oracle.
    pub fn new(attack: &'a SatAttack, locked: &'a LockedNetlist, oracle: &'a Netlist) -> Self {
        ResumableSatAttack {
            attack,
            locked,
            oracle,
        }
    }
}

impl Resumable for ResumableSatAttack<'_> {
    type State = SatAttackState;
    type Checkpoint = SatAttackCheckpoint;
    type Output = SatAttackOutcome;

    fn init_state(&self) -> SatAttackState {
        self.attack.init_state(self.locked, self.oracle)
    }

    fn step(&self, state: &mut SatAttackState) -> bool {
        self.attack.step(state, self.locked, self.oracle)
    }

    fn is_finished(&self, state: &SatAttackState) -> bool {
        state.is_finished()
    }

    fn finish(&self, state: SatAttackState) -> SatAttackOutcome {
        self.attack.finish(state, self.locked)
    }

    fn checkpoint(&self, state: &SatAttackState) -> SatAttackCheckpoint {
        self.attack.checkpoint(state)
    }

    fn restore(&self, checkpoint: SatAttackCheckpoint) -> Result<SatAttackState, String> {
        self.attack.restore(self.locked, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::{c17, suite_circuit, synth_circuit};
    use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};
    use autolock_netlist::equiv;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_recovered_key_is_functional(
        original: &Netlist,
        locked: &LockedNetlist,
        outcome: &SatAttackOutcome,
    ) {
        assert!(outcome.success, "attack should succeed: {outcome:?}");
        let equivalent = equiv::exhaustive_equivalent(
            original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
        )
        .unwrap();
        assert!(equivalent, "recovered key must unlock the design");
    }

    #[test]
    fn sat_attack_breaks_xor_locking_on_c17() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
        assert!(outcome.iterations <= 16);
    }

    #[test]
    fn resumable_trait_run_equals_direct_attack() {
        // Driving the attack through the unified `Resumable` trait —
        // including a checkpoint/restore round-trip mid-run — must be
        // indistinguishable from `SatAttack::attack`.
        let original = synth_circuit("sat-resumable", 8, 4, 90, 21);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let locked = XorLocking::default().lock(&original, 6, &mut rng).unwrap();
        let attack = SatAttack::default();
        let direct = attack.attack(&locked, &original);

        let job = ResumableSatAttack::new(&attack, &locked, &original);
        let mut state = job.init_state();
        let mut stepped_once = false;
        while job.step(&mut state) {
            // Round-trip through the serialized checkpoint at the first
            // boundary, as the service engine would after a kill.
            if !stepped_once {
                stepped_once = true;
                let json = serde_json::to_string(&job.checkpoint(&state)).unwrap();
                let revived: SatAttackCheckpoint = serde_json::from_str(&json).unwrap();
                state = job.restore(revived).unwrap();
            }
        }
        assert!(job.is_finished(&state));
        let resumed = job.finish(state);
        assert_eq!(direct.success, resumed.success);
        assert_eq!(direct.recovered_key, resumed.recovered_key);
        assert_eq!(direct.iterations, resumed.iterations);
        assert_eq!(direct.solver_conflicts, resumed.solver_conflicts);
    }

    #[test]
    fn sat_attack_breaks_dmux_locking_on_c17() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let locked = DMuxLocking::default().lock(&original, 3, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
    }

    #[test]
    fn sat_attack_on_synthetic_circuit() {
        let original = synth_circuit("t", 8, 4, 60, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert!(outcome.success);
        // Functional correctness via random simulation (exhaustive is 2^8 here,
        // still fine, but keep the random path exercised).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ok = equiv::random_equivalent(
            &original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
            8,
            &mut rng,
        )
        .unwrap();
        assert!(ok);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let original = synth_circuit("t", 10, 4, 120, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default()
            .lock(&original, 12, &mut rng)
            .unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations: 0,
            timeout_ms: 60_000,
            ..SatAttackConfig::default()
        });
        let outcome = attack.attack(&locked, &original);
        assert!(!outcome.success);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn timeout_bounds_wall_clock_even_mid_solve() {
        // st6288 embeds an array multiplier; its miter is hard enough that a
        // single unbounded miter.solve() runs for minutes (measured: the
        // attack makes <1 DIP iteration per second in release). A tiny
        // timeout must still bound the whole attack, which only works if the
        // deadline is enforced *inside* the CDCL loop.
        let original = suite_circuit("st6288").expect("structured suite member");
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let locked = XorLocking::default().lock(&original, 32, &mut rng).unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            max_iterations: 5000,
            timeout_ms: 50,
            ..SatAttackConfig::default()
        });
        let start = Instant::now();
        let outcome = attack.attack(&locked, &original);
        let elapsed = start.elapsed();
        assert!(outcome.gave_up, "attack must give up: {outcome:?}");
        assert!(!outcome.success);
        // Generous debug-build bound — still orders of magnitude below the
        // unbounded runtime. The release-mode service smoke in CI checks the
        // tighter small-multiple-of-deadline property.
        assert!(
            elapsed < Duration::from_secs(30),
            "deadline overrun: {elapsed:?}"
        );
    }

    #[test]
    fn propagation_cap_induces_deterministic_give_up() {
        // The machine-independent budget: two identical runs cut off at the
        // same search point and report identical partial stats.
        let original = suite_circuit("st6288").expect("structured suite member");
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            let locked = DMuxLocking::default()
                .lock(&original, 16, &mut rng)
                .unwrap();
            // The iteration cap is a backstop: measured release runs spend
            // millions of propagations per miter solve here, so the 20k cap
            // triggers within the first iterations either way.
            SatAttack::new(SatAttackConfig {
                max_iterations: 30,
                timeout_ms: u128::MAX,
                max_propagations_per_solve: Some(20_000),
                ..SatAttackConfig::default()
            })
            .attack(&locked, &original)
        };
        let a = run();
        let b = run();
        assert!(a.gave_up, "cap must trigger: {a:?}");
        assert!(!a.success);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.solver_conflicts, b.solver_conflicts);
        assert_eq!(a.recovered_key, b.recovered_key);
    }

    #[test]
    fn generous_budget_leaves_attack_unaffected() {
        // A budget far above what c17 needs must not change the result.
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        let outcome = SatAttack::new(SatAttackConfig {
            max_iterations: 2000,
            timeout_ms: 60_000,
            max_propagations_per_solve: Some(10_000_000),
            ..SatAttackConfig::default()
        })
        .attack(&locked, &original);
        assert!(outcome.success);
        assert!(!outcome.gave_up);
        assert_recovered_key_is_functional(&original, &locked, &outcome);
    }

    #[test]
    fn keyless_netlist_trivially_succeeds() {
        let original = c17();
        let locked = LockedNetlist::new(
            original.clone(),
            Key::zeros(0),
            vec![],
            "none",
            original.name(),
        )
        .unwrap();
        let outcome = SatAttack::default().attack(&locked, &original);
        assert!(outcome.success);
        assert_eq!(outcome.key_len, 0);
    }

    #[test]
    fn stepped_run_matches_monolithic_attack() {
        let original = synth_circuit("t", 8, 4, 60, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
        let attack = SatAttack::default();
        let reference = attack.attack(&locked, &original);

        let mut state = attack.init_state(&locked, &original);
        while attack.step(&mut state, &locked, &original) {}
        let stepped = attack.finish(state, &locked);

        assert_eq!(stepped.success, reference.success);
        assert_eq!(stepped.iterations, reference.iterations);
        assert_eq!(stepped.solver_conflicts, reference.solver_conflicts);
        assert_eq!(stepped.recovered_key, reference.recovered_key);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_bit_identically() {
        // Pause every single conflict, checkpoint through JSON at *every*
        // step boundary, and restore into a fresh state each time. The final
        // outcome must match an uninterrupted run exactly — the strongest
        // form of "a SIGKILL between any two steps loses nothing".
        let original = synth_circuit("t", 8, 4, 60, 13);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = DMuxLocking::default().lock(&original, 6, &mut rng).unwrap();
        let attack = SatAttack::new(SatAttackConfig {
            checkpoint_conflicts: Some(1),
            ..SatAttackConfig::default()
        });
        let reference = attack.attack(&locked, &original);

        let mut state = attack.init_state(&locked, &original);
        let mut steps = 0usize;
        while attack.step(&mut state, &locked, &original) {
            let json = serde_json::to_string(&attack.checkpoint(&state)).unwrap();
            let revived: SatAttackCheckpoint = serde_json::from_str(&json).unwrap();
            state = attack.restore(&locked, revived).unwrap();
            steps += 1;
            assert!(steps < 100_000, "stepped attack must terminate");
        }
        let resumed = attack.finish(state, &locked);

        assert_eq!(resumed.success, reference.success);
        assert_eq!(resumed.iterations, reference.iterations);
        assert_eq!(resumed.solver_conflicts, reference.solver_conflicts);
        assert_eq!(resumed.recovered_key, reference.recovered_key);
        assert!(
            steps > resumed.iterations,
            "granule 1 must pause inside solves: {steps} steps, {} DIPs",
            resumed.iterations
        );
    }

    #[test]
    fn pause_granule_does_not_change_the_search() {
        // With and without a pause granule the solver must walk the same
        // path: pausing is a pure suspension, not a restart.
        let original = synth_circuit("t", 10, 4, 120, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
        let plain = SatAttack::default().attack(&locked, &original);
        let paused = SatAttack::new(SatAttackConfig {
            checkpoint_conflicts: Some(3),
            ..SatAttackConfig::default()
        })
        .attack(&locked, &original);
        assert_eq!(paused.success, plain.success);
        assert_eq!(paused.iterations, plain.iterations);
        assert_eq!(paused.solver_conflicts, plain.solver_conflicts);
        assert_eq!(paused.recovered_key, plain.recovered_key);
    }

    #[test]
    fn restore_rejects_mismatched_checkpoint() {
        let original = c17();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = XorLocking::default().lock(&original, 4, &mut rng).unwrap();
        let attack = SatAttack::default();
        let state = attack.init_state(&locked, &original);
        let good = attack.checkpoint(&state);

        // Wrong key arity: checkpoint from a different lock width.
        let mut wrong_keys = good.clone();
        wrong_keys.key_vars.pop();
        assert!(attack.restore(&locked, wrong_keys).is_err());

        // Wrong circuit: the other netlist has a different gate count.
        let other = synth_circuit("other", 8, 4, 60, 99);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let other_locked = XorLocking::default().lock(&other, 4, &mut rng).unwrap();
        assert!(attack.restore(&other_locked, good).is_err());
    }
}
