//! Bounded LRU cache of extracted locality (enclosing) subgraphs.
//!
//! Subgraph extraction is the dominant per-candidate cost of the MuxLink
//! pipeline on ISCAS-sized netlists: every candidate link needs the h-hop
//! neighbourhood of its `(driver, sink)` pair, and experiment drivers attack
//! the *same* locked netlist repeatedly (retrained attacker seeds, density
//! sweeps). The candidate set is a function of the netlist alone, so those
//! repeats re-extract identical subgraphs. [`SubgraphCache`] memoizes them:
//! entries are keyed by `(driver, sink, hops, drop_link)` and shared as
//! [`Arc`]s, the capacity is bounded with least-recently-used eviction, and
//! a structural fingerprint of the attacked netlist guards reuse — a cache
//! owned by a long-lived attack instance resets itself the moment the
//! attack is pointed at a different netlist.
//!
//! Thread safety: the cache sits behind a [`Mutex`] inside
//! [`crate::MuxLinkAttack`]; extraction happens *outside* the lock, lookups
//! are single hash-map operations, and eviction batch-drops the oldest
//! eighth so its scan amortizes to O(1) per insert — the scoring fan-out
//! threads contend only briefly. Caching never changes attack outcomes
//! (extraction is deterministic); the equivalence is pinned by
//! `tests/subgraph_cache.rs`.

use autolock_netlist::graph::{CsrGraph, EnclosingSubgraph};
use autolock_netlist::{GateId, Netlist};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Cache key: a candidate pair, the extraction radius, and whether the
/// link itself was hidden before extraction.
type Key = (GateId, GateId, usize, bool);

/// Hit/miss counters of a [`SubgraphCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to extract.
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

/// The mutable state guarded by the mutex.
#[derive(Debug, Default)]
struct Inner {
    /// Fingerprint of the netlist the entries belong to.
    fingerprint: u64,
    /// Cached subgraphs with their last-use stamp.
    map: HashMap<Key, (Arc<EnclosingSubgraph>, u64)>,
    /// Monotonic use counter (the LRU clock).
    clock: u64,
    stats: CacheStats,
}

/// Bounded, thread-safe LRU cache of enclosing subgraphs. See the [module
/// documentation](self).
#[derive(Debug, Default)]
pub struct SubgraphCache {
    inner: Mutex<Inner>,
}

/// Structural fingerprint of a netlist: gate kinds and wiring, order
/// sensitive. Two netlists with the same fingerprint are treated as the
/// same cache domain.
pub fn netlist_fingerprint(nl: &Netlist) -> u64 {
    let mut h = DefaultHasher::new();
    nl.name().hash(&mut h);
    nl.len().hash(&mut h);
    for (_, gate) in nl.iter() {
        (gate.kind.code() as u64).hash(&mut h);
        for f in &gate.fanin {
            f.index().hash(&mut h);
        }
        u64::MAX.hash(&mut h); // fan-in list terminator
    }
    h.finish()
}

impl SubgraphCache {
    /// Returns the cached subgraph for `(u, v, hops, drop_link)` or extracts it
    /// from `graph` and caches it, evicting the least recently used entry
    /// once `capacity` is exceeded.
    ///
    /// `fingerprint` must be the [`netlist_fingerprint`] of the netlist
    /// `graph` was built from; a mismatch clears the cache first, so a
    /// shared attack instance can never serve subgraphs of a previous
    /// target.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_extract(
        &self,
        fingerprint: u64,
        graph: &CsrGraph,
        u: GateId,
        v: GateId,
        hops: usize,
        drop_link: bool,
        capacity: usize,
    ) -> Arc<EnclosingSubgraph> {
        let key = (u, v, hops, drop_link);
        {
            let mut inner = self.inner.lock().expect("subgraph cache poisoned");
            if inner.fingerprint != fingerprint {
                inner.map.clear();
                inner.fingerprint = fingerprint;
            }
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some((sg, used)) = inner.map.get_mut(&key) {
                *used = stamp;
                let sg = Arc::clone(sg);
                inner.stats.hits += 1;
                return sg;
            }
            inner.stats.misses += 1;
        }
        // Extract outside the lock: other threads keep hitting the cache
        // while this thread does the BFS work. Two threads may race on the
        // same miss and both extract — extraction is deterministic, so the
        // duplicate work is harmless and the last insert wins.
        let sg = Arc::new(graph.enclosing_subgraph(u, v, hops, drop_link));
        let mut inner = self.inner.lock().expect("subgraph cache poisoned");
        // Re-check the domain: a concurrent attack on a *different* netlist
        // (e.g. parallel GA fitness evaluations sharing one attack instance)
        // may have switched the fingerprint while we extracted. Inserting
        // into a foreign domain would let that attack hit a subgraph whose
        // GateIds belong to our netlist — skip the insert instead.
        if inner.fingerprint == fingerprint {
            inner.clock += 1;
            let stamp = inner.clock;
            inner.map.insert(key, (Arc::clone(&sg), stamp));
            let capacity = capacity.max(1);
            if inner.map.len() > capacity {
                // Batch-evict the least recently used eighth in one scan, so
                // the scan cost amortizes to O(1) per insert instead of an
                // O(capacity) walk under the lock on every miss once full.
                let drop_n = (capacity / 8).max(1);
                let mut stamps: Vec<(u64, Key)> =
                    inner.map.iter().map(|(k, (_, used))| (*used, *k)).collect();
                stamps.sort_unstable_by_key(|&(used, _)| used);
                for &(_, k) in stamps.iter().take(drop_n) {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                }
            }
        }
        sg
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("subgraph cache poisoned").stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("subgraph cache poisoned")
            .map
            .len()
    }

    /// Returns `true` if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_netlist::GateKind;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("in0");
        for i in 0..n {
            prev = nl
                .add_gate(format!("g{i}"), GateKind::Not, vec![prev])
                .unwrap();
        }
        nl.mark_output(prev);
        nl
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let nl = chain(8);
        let graph = CsrGraph::from_netlist(&nl);
        let fp = netlist_fingerprint(&nl);
        let cache = SubgraphCache::default();
        let a = GateId::from(1u32);
        let b = GateId::from(3u32);
        let first = cache.get_or_extract(fp, &graph, a, b, 2, false, 16);
        let second = cache.get_or_extract(fp, &graph, a, b, 2, false, 16);
        assert_eq!(first.nodes, second.nodes);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
        // Different drop flag is a different entry.
        cache.get_or_extract(fp, &graph, a, b, 2, true, 16);
        assert_eq!(cache.stats().misses, 2);
        // Different radius is a different entry too (never serve a 2-hop
        // subgraph for a 3-hop query).
        let wider = cache.get_or_extract(fp, &graph, a, b, 3, false, 16);
        assert_eq!(cache.stats().misses, 3);
        assert!(wider.nodes.len() >= first.nodes.len());
    }

    #[test]
    fn capacity_is_bounded_with_lru_eviction() {
        let nl = chain(32);
        let graph = CsrGraph::from_netlist(&nl);
        let fp = netlist_fingerprint(&nl);
        let cache = SubgraphCache::default();
        for i in 0..10u32 {
            cache.get_or_extract(
                fp,
                &graph,
                GateId::from(i),
                GateId::from(i + 1),
                1,
                false,
                4,
            );
        }
        assert!(cache.len() <= 4);
        assert!(cache.stats().evictions >= 6);
    }

    #[test]
    fn fingerprint_mismatch_clears_entries() {
        let nl1 = chain(8);
        let nl2 = chain(9);
        let g1 = CsrGraph::from_netlist(&nl1);
        let g2 = CsrGraph::from_netlist(&nl2);
        let (fp1, fp2) = (netlist_fingerprint(&nl1), netlist_fingerprint(&nl2));
        assert_ne!(fp1, fp2);
        let cache = SubgraphCache::default();
        let a = GateId::from(1u32);
        let b = GateId::from(3u32);
        cache.get_or_extract(fp1, &g1, a, b, 2, false, 16);
        cache.get_or_extract(fp2, &g2, a, b, 2, false, 16);
        // The second call must not have been served from nl1's entry.
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 1);
    }
}
