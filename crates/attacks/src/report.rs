//! Attack result reporting.

use autolock_locking::{Key, LockedNetlist};
use serde::{Deserialize, Serialize};

/// A per-bit key guess with a confidence value in `[0, 1]`.
///
/// Confidence 0.5 means "coin flip"; MuxLink-style attacks report the margin
/// between the two candidate-link scores here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyGuess {
    /// Index of the key bit.
    pub bit: usize,
    /// Predicted value.
    pub value: bool,
    /// Attack confidence in the prediction (0.5 = no information).
    pub confidence: f64,
}

/// Outcome of an oracle-less key-recovery attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Attack name.
    pub attack: String,
    /// Locking scheme that was attacked.
    pub scheme: String,
    /// Design name.
    pub design: String,
    /// Key length.
    pub key_len: usize,
    /// Per-bit guesses (one per key bit, in key order).
    pub guesses: Vec<KeyGuess>,
    /// Key-prediction accuracy against the ground-truth key: fraction of key
    /// bits guessed correctly. This is the quantity the AutoLock fitness
    /// function minimizes (the paper's "MuxLink accuracy").
    pub key_accuracy: f64,
    /// Accuracy restricted to bits whose confidence exceeds the attack's
    /// decision threshold ("precision" in the MuxLink terminology); `None` if
    /// every bit was below threshold.
    pub confident_accuracy: Option<f64>,
    /// Fraction of key bits the attack was confident about.
    pub decided_fraction: f64,
    /// Wall-clock milliseconds spent in the attack.
    pub runtime_ms: u128,
}

impl AttackOutcome {
    /// Assembles an outcome by scoring `guesses` against the true key of
    /// `locked`.
    ///
    /// `confidence_threshold` sets which guesses count as "confident" (the
    /// margin-based precision metric reported alongside plain accuracy).
    ///
    /// # Panics
    ///
    /// Panics if the number of guesses differs from the key length.
    pub fn from_guesses(
        attack: impl Into<String>,
        locked: &LockedNetlist,
        guesses: Vec<KeyGuess>,
        confidence_threshold: f64,
        runtime_ms: u128,
    ) -> Self {
        assert_eq!(
            guesses.len(),
            locked.key_len(),
            "one guess per key bit required"
        );
        let truth = locked.key();
        let correct = guesses
            .iter()
            .filter(|g| truth.get(g.bit) == Some(g.value))
            .count();
        let key_accuracy = if guesses.is_empty() {
            1.0
        } else {
            correct as f64 / guesses.len() as f64
        };
        let confident: Vec<&KeyGuess> = guesses
            .iter()
            .filter(|g| g.confidence >= confidence_threshold)
            .collect();
        let decided_fraction = if guesses.is_empty() {
            0.0
        } else {
            confident.len() as f64 / guesses.len() as f64
        };
        let confident_accuracy = if confident.is_empty() {
            None
        } else {
            let ok = confident
                .iter()
                .filter(|g| truth.get(g.bit) == Some(g.value))
                .count();
            Some(ok as f64 / confident.len() as f64)
        };
        AttackOutcome {
            attack: attack.into(),
            scheme: locked.scheme().to_string(),
            design: locked.original_name().to_string(),
            key_len: locked.key_len(),
            guesses,
            key_accuracy,
            confident_accuracy,
            decided_fraction,
            runtime_ms,
        }
    }

    /// The guessed key as a [`Key`].
    pub fn predicted_key(&self) -> Key {
        let mut bits = vec![false; self.key_len];
        for g in &self.guesses {
            if g.bit < bits.len() {
                bits[g.bit] = g.value;
            }
        }
        Key::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::c17;
    use autolock_locking::{DMuxLocking, LockingScheme};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn locked_c17() -> LockedNetlist {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        DMuxLocking::default().lock(&c17(), 3, &mut rng).unwrap()
    }

    #[test]
    fn perfect_guess_scores_one() {
        let locked = locked_c17();
        let guesses: Vec<KeyGuess> = locked
            .key()
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| KeyGuess {
                bit: i,
                value: b,
                confidence: 0.9,
            })
            .collect();
        let outcome = AttackOutcome::from_guesses("test", &locked, guesses, 0.6, 5);
        assert_eq!(outcome.key_accuracy, 1.0);
        assert_eq!(outcome.confident_accuracy, Some(1.0));
        assert_eq!(outcome.decided_fraction, 1.0);
        assert_eq!(outcome.predicted_key(), *locked.key());
    }

    #[test]
    fn inverted_guess_scores_zero_and_threshold_filters() {
        let locked = locked_c17();
        let guesses: Vec<KeyGuess> = locked
            .key()
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| KeyGuess {
                bit: i,
                value: !b,
                confidence: if i == 0 { 0.9 } else { 0.5 },
            })
            .collect();
        let outcome = AttackOutcome::from_guesses("test", &locked, guesses, 0.8, 1);
        assert_eq!(outcome.key_accuracy, 0.0);
        assert_eq!(outcome.confident_accuracy, Some(0.0));
        assert!((outcome.decided_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_confident_guesses_yields_none() {
        let locked = locked_c17();
        let guesses: Vec<KeyGuess> = (0..locked.key_len())
            .map(|i| KeyGuess {
                bit: i,
                value: false,
                confidence: 0.5,
            })
            .collect();
        let outcome = AttackOutcome::from_guesses("test", &locked, guesses, 0.9, 0);
        assert_eq!(outcome.confident_accuracy, None);
        assert_eq!(outcome.decided_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "one guess per key bit")]
    fn wrong_guess_count_panics() {
        let locked = locked_c17();
        AttackOutcome::from_guesses("test", &locked, vec![], 0.5, 0);
    }
}
