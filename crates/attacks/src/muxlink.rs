//! The MuxLink-style link-prediction attack.
//!
//! MuxLink (Alrahis et al., DATE 2022) observes that MUX-based locking hides
//! *which of two wires really existed* in the original design, and that this
//! is exactly the link-prediction problem on the netlist graph. The attack is
//! **self-supervised**: it trains only on the locked netlist itself, using the
//! links that are *not* protected by key gates as positive examples and random
//! non-adjacent pairs as negatives, then scores the two candidate links behind
//! every key-controlled MUX and picks the more link-like one.
//!
//! Pipeline of this reproduction:
//!
//! 1. hide key inputs and key MUXes from the structural view,
//! 2. sample training links/non-links,
//! 3. train the configured [`MuxLinkBackend`]: either a bagged
//!    [`autolock_mlcore::Mlp`] ensemble over enclosing-subgraph statistics
//!    (the seed approximation) or the faithful [`autolock_gnn::Dgcnn`] over
//!    the raw enclosing subgraphs,
//! 4. score each candidate link of each key MUX (with the cycle rule as a
//!    hard override),
//! 5. vote per key bit (both MUXes driven by the same key input contribute)
//!    and report per-bit confidence = normalized score margin.

use crate::cache::{netlist_fingerprint, CacheStats, SubgraphCache};
use crate::features::{visible_levels, FeatureMode, LinkFeatureConfig, LinkFeatureExtractor};
use crate::report::{AttackOutcome, KeyGuess};
use crate::KeyRecoveryAttack;
use autolock_gnn::{
    Dgcnn, DgcnnConfig, GraphSource, LinkPredictor, SortPoolK, SourceTensor, SubgraphTensor,
};
use autolock_locking::LockedNetlist;
use autolock_mlcore::scratch::ScratchPool;
use autolock_mlcore::{Dataset, MlpConfig, MlpEnsemble, MlpEnsembleConfig};
use autolock_netlist::graph::{CsrGraph, EnclosingSubgraph};
use autolock_netlist::{GateId, GateKind, Netlist};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One candidate decision point: a key-controlled MUX and the two links it
/// hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MuxCandidate {
    /// Index of the key bit (position of the select key input among the
    /// netlist's key inputs).
    pub key_bit: usize,
    /// The MUX gate.
    pub mux: GateId,
    /// The gate the MUX drives.
    pub sink: GateId,
    /// Driver selected when the key bit is 0.
    pub cand_key0: GateId,
    /// Driver selected when the key bit is 1.
    pub cand_key1: GateId,
}

/// Which learned model scores candidate links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MuxLinkBackend {
    /// Enclosing-subgraph statistics fed to a bagged MLP ensemble (the seed
    /// reproduction's approximation of the published attack).
    #[default]
    Mlp,
    /// A DGCNN over the raw enclosing subgraphs (`autolock_gnn`), faithful to
    /// the published MuxLink architecture.
    Gnn,
}

/// Configuration of [`MuxLinkAttack`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MuxLinkConfig {
    /// The model that scores candidate links.
    pub backend: MuxLinkBackend,
    /// Feature-extraction settings (hops, mode). `features.mode` is an
    /// ablation of the *MLP* feature extractor; the GNN backend always sees
    /// the raw enclosing subgraph, so with [`MuxLinkBackend::Gnn`] the mode
    /// is ignored and the attack keeps its `muxlink-gnn` identity.
    pub features: LinkFeatureConfig,
    /// Hidden-layer sizes of the MLP.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Maximum number of positive (and negative) training samples.
    pub max_train_samples_per_class: usize,
    /// Number of independently initialized MLPs trained and averaged per
    /// attack. Ensembling drains most of the variance a single small MLP
    /// shows on the few hundred training links a small netlist yields.
    pub ensemble: usize,
    /// Margin above which a key-bit prediction counts as "confident".
    pub confidence_threshold: f64,
    /// Worker threads for everything parallel inside one attack invocation:
    /// `0` = all available cores, `1` = serial, `n` = exactly `n`. The
    /// attack outcome is bit-for-bit identical for every setting; this knob
    /// only trades wall-clock time.
    ///
    /// This is the **single source of truth** for attack-level parallelism
    /// — the precedence chain, top to bottom:
    ///
    /// 1. Experiment drivers that fan whole attack repeats or per-circuit
    ///    runs across workers (`autolock_bench::parallel_map`, sized by the
    ///    `AUTOLOCK_THREADS` env var) sit *above* the attack and should set
    ///    this knob to `1` so nested pools do not oversubscribe the machine.
    /// 2. Within one attack, this value reaches **both backends**: it sizes
    ///    the MLP bagged-ensemble pool ([`autolock_mlcore::MlpEnsembleConfig::threads`]),
    ///    the GNN training pool ([`autolock_gnn::DgcnnConfig::num_threads`]),
    ///    and the shared candidate-scoring / tensor-construction fan-outs.
    /// 3. `DgcnnConfig::num_threads` is never set independently by this
    ///    crate; standalone `autolock_gnn` users may still set it directly.
    ///
    /// Because thread count never changes outcomes, presets stay
    /// reproducible across machines with any core count.
    pub threads: usize,
    /// SortPooling output size of the GNN backend: a fixed `k`, or
    /// [`SortPoolK::Percentile`] to apply DGCNN's dataset-percentile rule to
    /// the sampled training subgraphs of each attacked netlist.
    pub gnn_sortpool_k: SortPoolK,
    /// Capacity of the LRU cache of extracted enclosing subgraphs (`0`
    /// disables caching). The cache lives on the attack *instance* and is
    /// keyed by a structural fingerprint of the attacked netlist, so
    /// retrained repeats on the same locked circuit — the standard
    /// evaluation protocol of every experiment driver — reuse each
    /// candidate's neighbourhood instead of re-extracting it. Caching never
    /// changes outcomes (extraction is deterministic).
    pub subgraph_cache: usize,
    /// Candidate links scored per batch: scoring (and GNN tensor
    /// construction) walks the pending candidate list in chunks of this
    /// size through the attack's thread pool, which bounds peak memory by
    /// `score_chunk` subgraph tensors instead of the whole candidate set —
    /// what keeps ISCAS-sized sweeps (hundreds of key bits) memory-lean.
    /// `0` means unchunked.
    pub score_chunk: usize,
}

impl Default for MuxLinkConfig {
    fn default() -> Self {
        MuxLinkConfig {
            backend: MuxLinkBackend::Mlp,
            features: LinkFeatureConfig::default(),
            hidden: vec![32, 16],
            epochs: 60,
            learning_rate: 0.01,
            max_train_samples_per_class: 400,
            ensemble: 5,
            confidence_threshold: 0.6,
            threads: 0,
            gnn_sortpool_k: SortPoolK::Fixed(10),
            subgraph_cache: 8192,
            score_chunk: 64,
        }
    }
}

impl MuxLinkConfig {
    /// A cheaper configuration used inside the AutoLock GA fitness loop
    /// (smaller model, fewer samples and epochs).
    pub fn fast() -> Self {
        MuxLinkConfig {
            hidden: vec![16],
            epochs: 30,
            max_train_samples_per_class: 300,
            ensemble: 5,
            ..Default::default()
        }
    }

    /// The DGCNN backend with full-strength settings.
    pub fn gnn() -> Self {
        MuxLinkConfig {
            backend: MuxLinkBackend::Gnn,
            epochs: 30,
            max_train_samples_per_class: 300,
            ..Default::default()
        }
    }

    /// A cheaper DGCNN configuration (fewer samples and epochs), the GNN
    /// counterpart of [`MuxLinkConfig::fast`] for use inside fitness loops —
    /// this is the adversary the E11 experiment evolves against.
    ///
    /// Like every preset it trains and scores parallel across all cores
    /// (`threads: 0`) with a fixed SortPooling `k`; tune either knob with
    /// [`MuxLinkConfig::with_threads`] / [`MuxLinkConfig::with_adaptive_k`]
    /// — neither changes the attack's output, percentile-`k` aside, so
    /// presets stay reproducible.
    pub fn gnn_fast() -> Self {
        MuxLinkConfig {
            backend: MuxLinkBackend::Gnn,
            epochs: 20,
            max_train_samples_per_class: 150,
            ..Default::default()
        }
    }

    /// Sets the attack's thread count (`0` = all cores, `1` = serial),
    /// reaching both backends — see [`MuxLinkConfig::threads`] for the
    /// precedence rules. Purely a wall-clock knob: outcomes are identical
    /// for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches the GNN backend to adaptive SortPooling: `k` becomes the
    /// node count at the given dataset percentile (DGCNN picks `k` so that
    /// this fraction of training subgraphs have ≥ `k` nodes).
    pub fn with_adaptive_k(mut self, percentile: f64) -> Self {
        self.gnn_sortpool_k = SortPoolK::Percentile(percentile);
        self
    }

    /// Sets the subgraph-cache capacity (`0` disables caching). Purely a
    /// wall-clock/memory knob: outcomes are identical for every value.
    pub fn with_subgraph_cache(mut self, capacity: usize) -> Self {
        self.subgraph_cache = capacity;
        self
    }

    /// The locality-only ablation (gate-type features only); models
    /// pre-MuxLink structural learning attacks.
    pub fn locality_only() -> Self {
        MuxLinkConfig {
            features: LinkFeatureConfig {
                mode: FeatureMode::LocalityOnly,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A trained MuxLink link scorer, detached from the attack invocation that
/// produced it.
///
/// [`MuxLinkAttack::train_model`] builds one; [`MuxLinkAttack::attack_with_model`]
/// scores a locked netlist with it, skipping the training phase entirely.
/// The whole enum is serde-serializable, which is what the service's
/// disk-backed model registry persists: a model trained once for a
/// (circuit, config, seed) triple is reloaded and reused across jobs
/// instead of being retrained.
///
/// A trained model is only meaningful for the locked netlist it was trained
/// on (MuxLink is self-supervised on the attacked netlist) and for the same
/// [`MuxLinkConfig`] feature settings — the registry keys on both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrainedLinkModel {
    /// Too few training links were available (or the netlist had no
    /// candidates); scoring falls back to the uninformed 0.5 everywhere,
    /// exactly as the monolithic attack does.
    Uninformative,
    /// The bagged-MLP backend with its feature standardization statistics.
    Mlp {
        /// The trained ensemble.
        model: MlpEnsemble,
        /// Per-feature training means (for standardizing scored rows).
        mean: Vec<f64>,
        /// Per-feature training standard deviations.
        std: Vec<f64>,
    },
    /// The DGCNN backend.
    Gnn {
        /// The trained network (including optimizer state).
        model: Dgcnn,
    },
}

/// A sampled set of (driver, sink) link examples.
type LinkPairs = Vec<(GateId, GateId)>;

/// A trained batch link scorer: `out[i]` answers `pairs[i]`.
type BatchScorer<'a> = Box<dyn Fn(&[(GateId, GateId)]) -> Vec<f64> + 'a>;

/// One candidate link's score: resolved by the cycle rule (`Ok`) or deferred
/// to slot `i` of the batched model query (`Err(i)`).
type ScoreSlot = Result<f64, usize>;

/// The streamed DGCNN training set of one attack invocation.
///
/// Each example is a `(driver, sink, drop_link)` triple; its tensor is built
/// on demand from the attack instance's subgraph cache (the extraction BFS
/// runs at most once per pair — the constructor warms the cache) and its
/// storage cycles through a scratch pool. Tensor construction is
/// deterministic, so the source is pure and the streamed trainer's
/// bit-for-bit contract applies: at no point does the whole training tensor
/// set exist in memory, which is what lets `MuxLinkBackend::Gnn` train on
/// the structured (ISCAS-scale) suite tier.
struct StreamedLinkSource<'a> {
    attack: &'a MuxLinkAttack,
    netlist: &'a Netlist,
    graph: &'a CsrGraph,
    fingerprint: u64,
    max_drnl: usize,
    pairs: Vec<(GateId, GateId, bool)>,
    labels: Vec<f64>,
    node_counts: Vec<usize>,
    scratch: ScratchPool,
}

impl GraphSource for StreamedLinkSource<'_> {
    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn label(&self, idx: usize) -> f64 {
        self.labels[idx]
    }

    fn num_nodes(&self, idx: usize) -> usize {
        self.node_counts[idx]
    }

    fn tensor(&self, idx: usize) -> SourceTensor<'_> {
        let (u, v, drop_link) = self.pairs[idx];
        let sg = self
            .attack
            .subgraph(self.fingerprint, self.graph, u, v, drop_link);
        SourceTensor::Owned(SubgraphTensor::from_enclosing_pooled(
            self.netlist,
            &sg,
            self.max_drnl,
            &self.scratch,
        ))
    }

    fn recycle(&self, tensor: SubgraphTensor) {
        tensor.recycle(&self.scratch);
    }
}

/// The MuxLink-style attack.
///
/// The instance owns the LRU subgraph cache
/// ([`MuxLinkConfig::subgraph_cache`]), so reusing one instance across
/// attack repeats on the same locked netlist — as the experiment drivers do
/// — shares extracted neighbourhoods between repeats.
#[derive(Debug, Default)]
pub struct MuxLinkAttack {
    config: MuxLinkConfig,
    cache: SubgraphCache,
}

impl Clone for MuxLinkAttack {
    /// Clones the configuration; the clone starts with an empty cache (the
    /// cache is a performance artifact, not attack state).
    fn clone(&self) -> Self {
        MuxLinkAttack::new(self.config.clone())
    }
}

impl MuxLinkAttack {
    /// Creates the attack with the given configuration.
    pub fn new(config: MuxLinkConfig) -> Self {
        MuxLinkAttack {
            config,
            cache: SubgraphCache::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MuxLinkConfig {
        &self.config
    }

    /// Hit/miss/eviction counters of the instance's subgraph cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The enclosing subgraph of `(u, v)`, served from the instance cache
    /// when enabled (see [`MuxLinkConfig::subgraph_cache`]).
    fn subgraph(
        &self,
        fingerprint: u64,
        graph: &CsrGraph,
        u: GateId,
        v: GateId,
        drop_link: bool,
    ) -> Arc<EnclosingSubgraph> {
        let hops = self.config.features.hops;
        if self.config.subgraph_cache == 0 {
            return Arc::new(graph.enclosing_subgraph(u, v, hops, drop_link));
        }
        self.cache.get_or_extract(
            fingerprint,
            graph,
            u,
            v,
            hops,
            drop_link,
            self.config.subgraph_cache,
        )
    }

    /// Structurally discovers every key-controlled MUX and the candidate links
    /// it hides. Uses only information an attacker has (the locked netlist).
    pub fn find_candidates(netlist: &Netlist) -> Vec<MuxCandidate> {
        let key_inputs = netlist.key_inputs();
        let key_index: HashMap<GateId, usize> = key_inputs
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let fanouts = netlist.fanouts();
        let mut candidates = Vec::new();
        for (id, gate) in netlist.iter() {
            if gate.kind != GateKind::Mux {
                continue;
            }
            let Some(&key_bit) = key_index.get(&gate.fanin[0]) else {
                continue;
            };
            // A sink reading the MUX through multiple fan-in positions still
            // constitutes a single candidate decision.
            let mut sinks: Vec<GateId> = fanouts[id.index()].clone();
            sinks.sort();
            sinks.dedup();
            for sink in sinks {
                candidates.push(MuxCandidate {
                    key_bit,
                    mux: id,
                    sink,
                    cand_key0: gate.fanin[1],
                    cand_key1: gate.fanin[2],
                });
            }
        }
        candidates
    }

    /// The set of gates hidden from the attack's structural view: key inputs
    /// and key-controlled MUXes.
    pub fn hidden_gates(netlist: &Netlist) -> HashSet<GateId> {
        let mut hidden: HashSet<GateId> = netlist
            .ids()
            .filter(|&id| netlist.gate(id).kind == GateKind::KeyInput)
            .collect();
        for (id, gate) in netlist.iter() {
            if gate.kind == GateKind::Mux && hidden.contains(&gate.fanin[0]) {
                hidden.insert(id);
            }
        }
        hidden
    }

    /// Samples the self-supervised training links: visible true wires as
    /// positives, random non-adjacent pairs as negatives. Shared by both
    /// backends.
    fn sample_links<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        hidden: &HashSet<GateId>,
        rng: &mut R,
    ) -> (LinkPairs, LinkPairs) {
        // Positive examples: wires of the locked netlist that do not touch
        // hidden gates.
        let mut positives: Vec<(GateId, GateId)> = Vec::new();
        for (id, gate) in netlist.iter() {
            if hidden.contains(&id) || gate.kind.is_input() || gate.kind.is_constant() {
                continue;
            }
            for &f in &gate.fanin {
                if !hidden.contains(&f) {
                    positives.push((f, id));
                }
            }
        }
        positives.shuffle(rng);
        positives.truncate(self.config.max_train_samples_per_class);

        // Negative examples: random non-adjacent (driver, sink) pairs.
        let visible: Vec<GateId> = netlist.ids().filter(|id| !hidden.contains(id)).collect();
        let sinks: Vec<GateId> = visible
            .iter()
            .copied()
            .filter(|&id| {
                let k = netlist.gate(id).kind;
                !k.is_input() && !k.is_constant()
            })
            .collect();
        let existing: HashSet<(GateId, GateId)> = netlist
            .iter()
            .flat_map(|(id, gate)| gate.fanin.iter().map(move |&f| (f, id)))
            .collect();
        let mut negatives: Vec<(GateId, GateId)> = Vec::new();
        let target = positives.len();
        let mut attempts = 0usize;
        while negatives.len() < target && attempts < target * 50 {
            attempts += 1;
            let (Some(&u), Some(&v)) = (visible.choose(rng), sinks.choose(rng)) else {
                break;
            };
            if u == v || existing.contains(&(u, v)) || existing.contains(&(v, u)) {
                continue;
            }
            negatives.push((u, v));
        }
        (positives, negatives)
    }

    /// Extracts MLP feature rows for sampled links, fanned across the
    /// attack's pool in scoring-sized chunks (order-preserving, so the
    /// dataset is identical to the serial loop).
    #[allow(clippy::too_many_arguments)]
    fn training_rows(
        &self,
        netlist: &Netlist,
        graph: &CsrGraph,
        fingerprint: u64,
        levels: &[usize],
        extractor: &LinkFeatureExtractor,
        positives: &[(GateId, GateId)],
        negatives: &[(GateId, GateId)],
    ) -> (Vec<Vec<f64>>, Vec<f64>) {
        let row = |&(u, v): &(GateId, GateId), drop_link: bool| {
            // The locality ablation never reads the neighbourhood — skip
            // extraction (and the cache) entirely for it.
            if self.config.features.mode == FeatureMode::LocalityOnly {
                return extractor.extract(netlist, graph, levels, u, v, drop_link);
            }
            // Positives hide the link itself before extracting its
            // neighbourhood (`drop_link` threads the exclusion through
            // without cloning the graph).
            let sg = self.subgraph(fingerprint, graph, u, v, drop_link);
            extractor.extract_with_subgraph(netlist, graph, levels, u, v, drop_link, &sg)
        };
        let mut rows = self.chunked(positives, |p| row(p, true));
        rows.extend(self.chunked(negatives, |p| row(p, false)));
        let mut labels = vec![1.0; positives.len()];
        labels.resize(rows.len(), 0.0);
        (rows, labels)
    }

    /// Order-preserving map of `f` over `items` across this attack's rayon
    /// pool ([`MuxLinkConfig::threads`]). Shared by GNN tensor construction
    /// and MLP candidate scoring — `out[i]` always answers `items[i]`, so
    /// results are identical to the serial loop for every thread count.
    fn pooled<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        autolock_mlcore::parallel::pooled_map(self.config.threads, items, f)
    }

    /// Effective chunk length for a batch of `n` items: the configured
    /// [`MuxLinkConfig::score_chunk`], with `0` meaning one unchunked batch.
    /// The single source of the chunking policy for both backends.
    fn chunk_size(&self, n: usize) -> usize {
        if self.config.score_chunk == 0 {
            n.max(1)
        } else {
            self.config.score_chunk
        }
    }

    /// [`MuxLinkAttack::pooled`] in [`MuxLinkAttack::chunk_size`]-sized
    /// chunks: only one chunk's intermediates are in flight at a time, which
    /// bounds peak memory on ISCAS-sized candidate sets while keeping the
    /// result order (and therefore the outcome) identical.
    fn chunked<T: Sync, R: Send>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
        let mut out = Vec::with_capacity(items.len());
        for part in items.chunks(self.chunk_size(items.len())) {
            out.extend(self.pooled(part, &f));
        }
        out
    }

    /// Builds DGCNN subgraph tensors for a batch of links, chunked through
    /// the attack's rayon pool (order-preserving, so results are identical
    /// to the serial loop). `drop_link` hides the link itself before
    /// extracting its neighbourhood, as required for positive training
    /// examples.
    fn gnn_tensors(
        &self,
        netlist: &Netlist,
        graph: &CsrGraph,
        fingerprint: u64,
        pairs: &[(GateId, GateId)],
        drop_link: bool,
    ) -> Vec<SubgraphTensor> {
        let max_drnl = self.config.features.max_drnl;
        self.chunked(pairs, |&(u, v)| {
            let sg = self.subgraph(fingerprint, graph, u, v, drop_link);
            SubgraphTensor::from_enclosing(netlist, &sg, max_drnl)
        })
    }

    /// Builds the streamed DGCNN training set for sampled links: positives
    /// (link hidden before extraction) followed by negatives, exactly the
    /// order the old materialize-everything path used — so the training
    /// trajectory is unchanged bit-for-bit, only the peak memory moved.
    fn training_source<'a>(
        &'a self,
        netlist: &'a Netlist,
        graph: &'a CsrGraph,
        fingerprint: u64,
        positives: &[(GateId, GateId)],
        negatives: &[(GateId, GateId)],
    ) -> StreamedLinkSource<'a> {
        let mut pairs: Vec<(GateId, GateId, bool)> =
            Vec::with_capacity(positives.len() + negatives.len());
        pairs.extend(positives.iter().map(|&(u, v)| (u, v, true)));
        pairs.extend(negatives.iter().map(|&(u, v)| (u, v, false)));
        let mut labels = vec![1.0; positives.len()];
        labels.resize(pairs.len(), 0.0);
        // One chunked warm-up pass records the node counts adaptive
        // SortPooling needs and leaves every training neighbourhood hot in
        // the instance's LRU cache, so the per-epoch tensor rebuilds of
        // streamed training never repeat the extraction BFS.
        let node_counts = self.chunked(&pairs, |&(u, v, drop_link)| {
            self.subgraph(fingerprint, graph, u, v, drop_link)
                .nodes
                .len()
        });
        StreamedLinkSource {
            attack: self,
            netlist,
            graph,
            fingerprint,
            max_drnl: self.config.features.max_drnl,
            pairs,
            labels,
            node_counts,
            scratch: ScratchPool::new(),
        }
    }

    /// Directed adjacency of the visible (non-hidden) part of the netlist.
    fn visible_fanouts(netlist: &Netlist, hidden: &HashSet<GateId>) -> Vec<Vec<GateId>> {
        let mut adj = vec![Vec::new(); netlist.len()];
        for (id, gate) in netlist.iter() {
            if hidden.contains(&id) {
                continue;
            }
            for &f in &gate.fanin {
                if !hidden.contains(&f) {
                    adj[f.index()].push(id);
                }
            }
        }
        adj
    }

    /// Returns `true` if `target` is reachable from `from` in the visible
    /// directed graph. Used for the cycle rule: a candidate link
    /// `driver → sink` is structurally impossible if `sink` already reaches
    /// `driver` (it would close a combinational loop).
    fn reaches(adj: &[Vec<GateId>], from: GateId, target: GateId) -> bool {
        if from == target {
            return true;
        }
        let mut visited = vec![false; adj.len()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(node) = stack.pop() {
            for &next in &adj[node.index()] {
                if next == target {
                    return true;
                }
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push(next);
                }
            }
        }
        false
    }

    /// Trains the link model for `locked` without scoring anything.
    ///
    /// This is the training half of [`MuxLinkAttack::attack_with_scores`]:
    /// it samples the self-supervised links and trains the configured
    /// backend, consuming exactly the RNG draws the monolithic attack's
    /// training phase consumes. The returned [`TrainedLinkModel`] is
    /// serde-serializable so callers (the service's model registry) can
    /// persist it and later skip retraining via
    /// [`MuxLinkAttack::attack_with_model`].
    pub fn train_model(&self, locked: &LockedNetlist, rng: &mut dyn RngCore) -> TrainedLinkModel {
        // Derive an owned, seedable RNG so training is deterministic given
        // the caller's RNG state (dyn RngCore cannot be cloned).
        let mut rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
        self.train_model_with(locked, &mut rng)
    }

    /// [`MuxLinkAttack::train_model`] on an already-derived RNG (shared with
    /// the monolithic path so the draw sequence is identical either way).
    fn train_model_with(&self, locked: &LockedNetlist, rng: &mut ChaCha8Rng) -> TrainedLinkModel {
        let netlist = locked.netlist();
        if locked.key_len() == 0 || Self::find_candidates(netlist).is_empty() {
            // Not a MUX-locked netlist (or keyless): nothing to train on.
            // No RNG draws here, so the monolithic path's fallback guesses
            // see the derived stream exactly where the old code left it.
            return TrainedLinkModel::Uninformative;
        }
        let hidden = Self::hidden_gates(netlist);
        let graph = CsrGraph::from_netlist_filtered(netlist, |id| hidden.contains(&id));
        let fingerprint = netlist_fingerprint(netlist);
        let levels = visible_levels(netlist, &hidden);
        let extractor = LinkFeatureExtractor::new(self.config.features);

        // Self-supervised training: sample links once, then train whichever
        // backend is configured.
        let (positives, negatives) = {
            let _span = autolock_obs::span!("attack.sample_links");
            self.sample_links(netlist, &hidden, rng)
        };
        let trainable = positives.len() + negatives.len() >= 8
            && !positives.is_empty()
            && !negatives.is_empty();
        if !trainable {
            return TrainedLinkModel::Uninformative;
        }
        let _train_span = autolock_obs::span!("attack.train");
        match self.config.backend {
            MuxLinkBackend::Mlp => {
                let (rows, labels) = self.training_rows(
                    netlist,
                    &graph,
                    fingerprint,
                    &levels,
                    &extractor,
                    &positives,
                    &negatives,
                );
                let data = Dataset::from_rows(rows, labels).expect("consistent feature rows");
                let (mean, std) = data.feature_stats();
                let data = data.standardized(&mean, &std);
                // Bagged ensemble: member training (full data for member 0,
                // bootstrap resamples after) fans out across the attack's
                // rayon pool with per-member seeded RNGs, so the trained
                // ensemble is bit-identical for every `threads` value.
                // Feature extraction is shared, so extra members only cost
                // MLP training time.
                let model = MlpEnsemble::train(
                    MlpEnsembleConfig {
                        mlp: MlpConfig {
                            input_dim: extractor.dim(),
                            hidden: self.config.hidden.clone(),
                            epochs: self.config.epochs,
                            learning_rate: self.config.learning_rate,
                            ..Default::default()
                        },
                        members: self.config.ensemble.max(1),
                        threads: self.config.threads,
                    },
                    &data,
                    rng,
                );
                TrainedLinkModel::Mlp { model, mean, std }
            }
            MuxLinkBackend::Gnn => {
                // The streamed training set: tensors are built per
                // mini-batch chunk from the cached enclosing subgraphs and
                // recycled after each example's gradients reduce, so peak
                // memory is one chunk of tensors — never the whole sampled
                // set.
                let source =
                    self.training_source(netlist, &graph, fingerprint, &positives, &negatives);
                let max_drnl = self.config.features.max_drnl;
                // Resolve the SortPooling size against the sampled training
                // subgraphs (the DGCNN percentile rule when `gnn_sortpool_k`
                // is adaptive), then train with batch-level parallelism.
                let mut model = Dgcnn::for_source(
                    DgcnnConfig {
                        epochs: self.config.epochs,
                        learning_rate: self.config.learning_rate,
                        sortpool_k: self.config.gnn_sortpool_k,
                        num_threads: self.config.threads,
                        ..DgcnnConfig::for_features(SubgraphTensor::feature_dim_for(max_drnl))
                    },
                    &source,
                    rng,
                );
                model.train_source(&source, rng);
                // ScratchPool occupancy after training = how many
                // streamed-tensor buffers the run ended up recycling.
                autolock_obs::gauge("gnn.scratch_retained").set(source.scratch.retained() as f64);
                TrainedLinkModel::Gnn { model }
            }
        }
    }

    /// Runs the attack with an already-trained model, skipping the training
    /// phase. This is how the service reuses registry-cached models: for a
    /// fully MUX-covered key (every bit has candidates — the normal case)
    /// the outcome is bit-identical to the monolithic
    /// [`MuxLinkAttack::attack_with_scores`] run that would have trained the
    /// same model in-line. Key bits *without* candidates fall back to coin
    /// flips drawn from this call's RNG.
    pub fn attack_with_model(
        &self,
        locked: &LockedNetlist,
        trained: &TrainedLinkModel,
        rng: &mut dyn RngCore,
    ) -> (AttackOutcome, Vec<(MuxCandidate, f64, f64)>) {
        let start = Instant::now();
        let _attack_span = autolock_obs::span!("attack.muxlink");
        autolock_obs::counter("attack.muxlink_runs").incr();
        let cache_before = self.cache_stats();
        let mut rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
        self.score_with_model(locked, trained, &mut rng, start, cache_before)
    }

    /// Runs the attack. Prefer [`KeyRecoveryAttack::attack`]; this inherent
    /// method additionally exposes the trained link scores per candidate.
    pub fn attack_with_scores(
        &self,
        locked: &LockedNetlist,
        rng: &mut dyn RngCore,
    ) -> (AttackOutcome, Vec<(MuxCandidate, f64, f64)>) {
        let start = Instant::now();
        // Observability is write-only (spans/counters record, never steer):
        // the attack takes identical branches and RNG draws whether the obs
        // registry is enabled, disabled, or compiled out.
        let _attack_span = autolock_obs::span!("attack.muxlink");
        autolock_obs::counter("attack.muxlink_runs").incr();
        let cache_before = self.cache_stats();
        // Derive an owned, seedable RNG so the attack is deterministic given
        // the caller's RNG state (dyn RngCore cannot be cloned). Training
        // and scoring share the one derived stream, exactly as the
        // pre-split monolithic implementation did.
        let mut rng = ChaCha8Rng::seed_from_u64(rng.next_u64());
        let trained = self.train_model_with(locked, &mut rng);
        self.score_with_model(locked, &trained, &mut rng, start, cache_before)
    }

    /// The scoring half shared by [`MuxLinkAttack::attack_with_scores`] and
    /// [`MuxLinkAttack::attack_with_model`]: wraps the trained model behind
    /// a uniform *batch* scoring closure (`scores[i]` answers `pairs[i]`),
    /// applies the cycle rule, and votes per key bit.
    fn score_with_model(
        &self,
        locked: &LockedNetlist,
        trained: &TrainedLinkModel,
        rng: &mut ChaCha8Rng,
        start: Instant,
        cache_before: CacheStats,
    ) -> (AttackOutcome, Vec<(MuxCandidate, f64, f64)>) {
        let netlist = locked.netlist();
        let key_len = locked.key_len();
        let candidates = Self::find_candidates(netlist);
        if candidates.is_empty() || key_len == 0 {
            // Not a MUX-locked netlist (or keyless): no information.
            let guesses = (0..key_len)
                .map(|bit| KeyGuess {
                    bit,
                    value: rng.gen(),
                    confidence: 0.5,
                })
                .collect();
            let outcome = AttackOutcome::from_guesses(
                self.name(),
                locked,
                guesses,
                self.config.confidence_threshold,
                start.elapsed().as_millis(),
            );
            return (outcome, Vec::new());
        }

        let hidden = Self::hidden_gates(netlist);
        let graph = CsrGraph::from_netlist_filtered(netlist, |id| hidden.contains(&id));
        let fingerprint = netlist_fingerprint(netlist);
        let levels = visible_levels(netlist, &hidden);
        let visible_adj = Self::visible_fanouts(netlist, &hidden);
        let extractor = LinkFeatureExtractor::new(self.config.features);

        let score_model: BatchScorer = match trained {
            TrainedLinkModel::Uninformative => Box::new(|pairs| vec![0.5; pairs.len()]),
            TrainedLinkModel::Mlp { model, mean, std } => {
                let graph_ref = &graph;
                let levels_ref = &levels;
                Box::new(move |pairs| {
                    // Candidate scoring walks pairs (cached subgraph +
                    // feature extraction + ensemble forward) in chunks
                    // across the same pool, order-preserving.
                    self.chunked(pairs, |&(driver, sink)| {
                        let f = if extractor.config().mode == FeatureMode::LocalityOnly {
                            // No neighbourhood needed: skip extraction.
                            extractor.extract(netlist, graph_ref, levels_ref, driver, sink, false)
                        } else {
                            let sg = self.subgraph(fingerprint, graph_ref, driver, sink, false);
                            extractor.extract_with_subgraph(
                                netlist, graph_ref, levels_ref, driver, sink, false, &sg,
                            )
                        };
                        model.predict(&Dataset::standardize_row(&f, mean, std))
                    })
                })
            }
            TrainedLinkModel::Gnn { model } => {
                let graph_ref = &graph;
                Box::new(move |pairs| {
                    // Chunked tensor construction + forward pass: at most
                    // `score_chunk` tensors are alive at a time.
                    let mut scores = Vec::with_capacity(pairs.len());
                    for part in pairs.chunks(self.chunk_size(pairs.len())) {
                        let tensors =
                            self.gnn_tensors(netlist, graph_ref, fingerprint, part, false);
                        scores.extend(model.score_batch(&tensors));
                    }
                    scores
                })
            }
        };

        // Score every candidate link. The model score is overridden by the
        // cycle rule (also used by the published MuxLink post-processing): a
        // candidate connection whose sink already reaches its driver would
        // close a combinational loop and therefore cannot be the true wire.
        // Cycle-free links are pooled into one batched model query.
        let mut pending: Vec<(GateId, GateId)> = Vec::new();
        // `Err(i)` defers to `model_scores[i]`; `Ok(s)` is a cycle override.
        let mut plan: Vec<(MuxCandidate, ScoreSlot, ScoreSlot)> =
            Vec::with_capacity(candidates.len());
        for cand in &candidates {
            let mut slot = |driver: GateId| -> ScoreSlot {
                if Self::reaches(&visible_adj, cand.sink, driver) {
                    Ok(0.0)
                } else {
                    pending.push((driver, cand.sink));
                    Err(pending.len() - 1)
                }
            };
            let s0 = slot(cand.cand_key0);
            let s1 = slot(cand.cand_key1);
            plan.push((*cand, s0, s1));
        }
        let model_scores = {
            let _span = autolock_obs::span!("attack.score_candidates");
            score_model(&pending)
        };
        let resolve = |s: ScoreSlot| s.unwrap_or_else(|i| model_scores[i]);
        let scored: Vec<(MuxCandidate, f64, f64)> = plan
            .into_iter()
            .map(|(cand, s0, s1)| (cand, resolve(s0), resolve(s1)))
            .collect();

        // Vote per key bit: candidates controlled by the same key input pool
        // their link scores.
        let mut votes: HashMap<usize, (f64, f64, usize)> = HashMap::new();
        for &(cand, s0, s1) in &scored {
            let entry = votes.entry(cand.key_bit).or_insert((0.0, 0.0, 0));
            entry.0 += s0;
            entry.1 += s1;
            entry.2 += 1;
        }
        let guesses: Vec<KeyGuess> = (0..key_len)
            .map(|bit| match votes.get(&bit) {
                Some(&(s0, s1, n)) if n > 0 => {
                    let avg0 = s0 / n as f64;
                    let avg1 = s1 / n as f64;
                    // Higher link score for the candidate selected by key=0
                    // means the true wire is the key=0 one.
                    let value = avg1 > avg0;
                    let confidence = 0.5 + (avg0 - avg1).abs() / 2.0;
                    KeyGuess {
                        bit,
                        value,
                        confidence: confidence.min(1.0),
                    }
                }
                _ => KeyGuess {
                    bit,
                    value: rng.gen(),
                    confidence: 0.5,
                },
            })
            .collect();

        // Surface this run's share of the instance cache's hit/miss/evict
        // counters through the obs registry (the instance accumulates across
        // repeats; the registry gets per-run deltas).
        let cache_after = self.cache_stats();
        autolock_obs::counter("attack.subgraph_cache.hits")
            .add(cache_after.hits - cache_before.hits);
        autolock_obs::counter("attack.subgraph_cache.misses")
            .add(cache_after.misses - cache_before.misses);
        autolock_obs::counter("attack.subgraph_cache.evictions")
            .add(cache_after.evictions - cache_before.evictions);

        let outcome = AttackOutcome::from_guesses(
            self.name(),
            locked,
            guesses,
            self.config.confidence_threshold,
            start.elapsed().as_millis(),
        );
        (outcome, scored)
    }
}

impl KeyRecoveryAttack for MuxLinkAttack {
    fn name(&self) -> &str {
        match (self.config.backend, self.config.features.mode) {
            // The locality ablation only exists for the MLP feature
            // extractor; the DGCNN always consumes raw subgraphs.
            (MuxLinkBackend::Gnn, _) => "muxlink-gnn",
            (MuxLinkBackend::Mlp, FeatureMode::LocalityOnly) => "locality-only",
            (MuxLinkBackend::Mlp, FeatureMode::Full) => "muxlink",
        }
    }

    fn attack(&self, locked: &LockedNetlist, rng: &mut dyn RngCore) -> AttackOutcome {
        self.attack_with_scores(locked, rng).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolock_circuits::synth_circuit;
    use autolock_locking::{DMuxLocking, LockingScheme, XorLocking};

    #[test]
    fn candidates_found_for_dmux_locked_netlist() {
        let original = synth_circuit("t", 10, 4, 120, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
        let cands = MuxLinkAttack::find_candidates(locked.netlist());
        // Two MUXes per key bit, each driving one sink.
        assert_eq!(cands.len(), 16);
        for c in &cands {
            assert!(c.key_bit < 8);
            assert_ne!(c.cand_key0, c.cand_key1);
        }
        let hidden = MuxLinkAttack::hidden_gates(locked.netlist());
        assert_eq!(hidden.len(), 8 + 16); // key inputs + muxes
    }

    #[test]
    fn muxlink_beats_random_on_dmux() {
        let original = synth_circuit("t", 12, 5, 200, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let locked = DMuxLocking::default()
            .lock(&original, 16, &mut rng)
            .unwrap();
        let attack = MuxLinkAttack::new(MuxLinkConfig::fast());
        let outcome = attack.attack(&locked, &mut rng);
        assert_eq!(outcome.guesses.len(), 16);
        // The attack must do clearly better than coin flipping on plain D-MUX.
        assert!(
            outcome.key_accuracy > 0.6,
            "expected muxlink to beat random guessing, got {}",
            outcome.key_accuracy
        );
    }

    #[test]
    fn attack_is_deterministic_for_a_given_rng_seed() {
        let original = synth_circuit("t", 10, 4, 150, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
        let attack = MuxLinkAttack::new(MuxLinkConfig::fast());
        let run = |seed: u64| {
            let mut r = ChaCha8Rng::seed_from_u64(seed);
            attack.attack(&locked, &mut r).key_accuracy
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn xor_locked_netlist_yields_uninformed_guesses() {
        let original = synth_circuit("t", 10, 4, 100, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = XorLocking::default().lock(&original, 8, &mut rng).unwrap();
        let attack = MuxLinkAttack::default();
        let outcome = attack.attack(&locked, &mut rng);
        assert_eq!(outcome.guesses.len(), 8);
        assert!(outcome.guesses.iter().all(|g| g.confidence == 0.5));
    }

    /// The train/score split is exact: training a model up front and
    /// attacking with it produces the same guesses and candidate scores as
    /// the monolithic attack — the contract that lets the service registry
    /// swap a cached model in for retraining. (DMux covers every key bit
    /// with candidates, so no coin-flip fallback draws occur and the
    /// comparison is bit-for-bit.)
    #[test]
    fn cached_model_attack_matches_monolithic_attack() {
        let original = synth_circuit("t", 10, 4, 150, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
        let attack = MuxLinkAttack::new(MuxLinkConfig::fast());

        let mut fresh_rng = ChaCha8Rng::seed_from_u64(42);
        let (fresh, fresh_scores) = attack.attack_with_scores(&locked, &mut fresh_rng);

        let mut split_rng = ChaCha8Rng::seed_from_u64(42);
        let model = attack.train_model(&locked, &mut split_rng);
        assert!(!matches!(model, TrainedLinkModel::Uninformative));
        let (cached, cached_scores) = attack.attack_with_model(&locked, &model, &mut split_rng);

        assert_eq!(fresh.guesses, cached.guesses);
        assert_eq!(fresh.key_accuracy, cached.key_accuracy);
        assert_eq!(fresh_scores, cached_scores);
    }

    /// A trained model survives serde: the registry's persisted JSON
    /// deserializes to an equal model that attacks identically.
    #[test]
    fn trained_model_round_trips_through_serde() {
        let original = synth_circuit("t", 10, 4, 150, 9);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();
        for config in [MuxLinkConfig::fast(), MuxLinkConfig::gnn_fast()] {
            let attack = MuxLinkAttack::new(config);
            let mut train_rng = ChaCha8Rng::seed_from_u64(7);
            let model = attack.train_model(&locked, &mut train_rng);
            let json = serde_json::to_string(&model).expect("serialize");
            let restored: TrainedLinkModel = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(restored, model);

            let mut rng_a = ChaCha8Rng::seed_from_u64(11);
            let mut rng_b = ChaCha8Rng::seed_from_u64(11);
            let (a, a_scores) = attack.attack_with_model(&locked, &model, &mut rng_a);
            let (b, b_scores) = attack.attack_with_model(&locked, &restored, &mut rng_b);
            assert_eq!(a.guesses, b.guesses);
            assert_eq!(a_scores, b_scores);
        }
    }

    /// A netlist with no key MUXes trains to `Uninformative` without
    /// consuming RNG draws beyond the derivation draw.
    #[test]
    fn unlockable_netlist_trains_uninformative() {
        let original = synth_circuit("t", 10, 4, 100, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let locked = XorLocking::default().lock(&original, 8, &mut rng).unwrap();
        let attack = MuxLinkAttack::default();
        let model = attack.train_model(&locked, &mut rng);
        assert!(matches!(model, TrainedLinkModel::Uninformative));
    }

    #[test]
    fn locality_only_mode_has_distinct_name() {
        let full = MuxLinkAttack::default();
        let local = MuxLinkAttack::new(MuxLinkConfig::locality_only());
        assert_eq!(full.name(), "muxlink");
        assert_eq!(local.name(), "locality-only");
    }
}
