#!/usr/bin/env bash
# CI smoke for the unified circuit-ingestion front door (crates/netlist
# ingest + serve_dir over a mixed-format directory).
#
# Exercises the mixed `.bench`/`.aag` contract on the mixed demo set (the
# quick synthetic pair plus a sequential AIGER circuit with 3 registers):
#
#   1. Reference run: serve the mixed directory to completion with SAT +
#      MuxLink jobs. The sequential member must fan out into its register-
#      cut (`demo_seq.cut*`) and 2-frame-unrolled (`demo_seq.u2*`) job
#      variants, and every row must record its source format.
#   2. Interrupted run: same jobs into a fresh output directory, SIGKILLed
#      as soon as the first row hits disk.
#   3. Resume: re-run against the interrupted directory; completed rows are
#      skipped and the remaining jobs run.
#
# Gate: the reference stream must contain both sequential variants (cut and
# unrolled) plus the combinational `.bench` rows with their formats, and
# the resumed stream must be byte-identical to the reference stream.
#
# Usage: ingest_smoke.sh [out-dir]   (default: ingest-smoke)
set -euo pipefail

BIN=target/release/serve_dir
OUT="${1:-ingest-smoke}"
ARGS=(--dir "$OUT/circuits" --scheme dmux --key-len 8 --seed 7
      --attacks sat,muxlink --unroll 2)

[ -x "$BIN" ] || { echo "ingest_smoke: $BIN not built" >&2; exit 1; }
rm -rf "$OUT"
mkdir -p "$OUT"

# 1. Reference run (--demo-mixed writes demo_a.bench, demo_b.bench and the
# sequential demo_seq.aag into $OUT/circuits). Every job finishes, so exit
# 0 is the contract.
"$BIN" "${ARGS[@]}" --demo-mixed --out "$OUT/reference" | tee "$OUT/reference.txt"

# The sequential member must produce both attack-target variants, each with
# SAT + MuxLink rows; the .bench pair keeps its historical ids.
for id in demo_a demo_a.muxlink demo_b demo_b.muxlink \
          demo_seq.cut demo_seq.cut.muxlink demo_seq.u2 demo_seq.u2.muxlink; do
  if ! grep -q "\"job_id\":\"$id\"" "$OUT/reference/rows.jsonl"; then
    echo "ingest_smoke: missing row for job $id" >&2
    exit 1
  fi
done
aiger_rows=$(grep -c '"format":"aiger"' "$OUT/reference/rows.jsonl")
bench_rows=$(grep -c '"format":"bench"' "$OUT/reference/rows.jsonl")
if [ "$aiger_rows" -ne 4 ] || [ "$bench_rows" -ne 4 ]; then
  echo "ingest_smoke: expected 4 aiger + 4 bench rows, got $aiger_rows + $bench_rows" >&2
  exit 1
fi
if grep -q '"status":"Error"' "$OUT/reference/rows.jsonl"; then
  echo "ingest_smoke: error row in the reference stream" >&2
  exit 1
fi

# 2. Interrupted run: kill -9 once the first row is on disk. (If the run
# wins the race and finishes first, the resume below degrades to a no-op
# re-run, which must still reproduce the stream byte-for-byte.)
"$BIN" "${ARGS[@]}" --out "$OUT/resumed" >/dev/null 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  [ -s "$OUT/resumed/rows.jsonl" ] && break
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# 3. Resume and gate on byte identity with the uninterrupted reference.
"$BIN" "${ARGS[@]}" --out "$OUT/resumed" | tee "$OUT/resumed.txt"
if ! cmp "$OUT/reference/rows.jsonl" "$OUT/resumed/rows.jsonl"; then
  echo "ingest_smoke: resumed stream differs from the reference" >&2
  exit 1
fi

echo "ingest_smoke: OK — $aiger_rows aiger + $bench_rows bench rows, both sequential variants present, resumed stream byte-identical"
