#!/usr/bin/env bash
# CI smoke for the attack-as-a-service engine (crates/service + serve_dir).
#
# Exercises the full resume contract on the demo trio (two quick synthetic
# circuits plus the structurally hard st6288):
#
#   1. Reference run: serve the directory to completion. The propagation cap
#      induces a *deterministic* timeout row on st6288 (exit status 2).
#   2. Interrupted run: same jobs into a fresh output directory, SIGKILLed
#      as soon as the first row hits disk.
#   3. Resume: re-run against the interrupted directory; completed rows are
#      skipped and the remaining jobs run.
#   4. All-kinds run: the quick circuit pair (no st6288) served with
#      --attacks sat,muxlink,evolve — one status row per (circuit, kind).
#
# Gate: the resumed stream must be byte-identical to the reference stream,
# the reference must contain at least one Timeout row, and the all-kinds
# stream must carry a row per job kind.
#
# Usage: service_smoke.sh [out-dir]   (default: service-smoke)
set -euo pipefail

BIN=target/release/serve_dir
OUT="${1:-service-smoke}"
ARGS=(--dir "$OUT/circuits" --scheme dmux --key-len 16 --seed 7
      --propagations 20000 --iterations 30)

[ -x "$BIN" ] || { echo "service_smoke: $BIN not built" >&2; exit 1; }
rm -rf "$OUT"
mkdir -p "$OUT"

# 1. Reference run (--demo also writes the circuit trio into $OUT/circuits).
rc=0
"$BIN" "${ARGS[@]}" --demo --out "$OUT/reference" | tee "$OUT/reference.txt" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "service_smoke: expected exit 2 (timeout row present), got $rc" >&2
  exit 1
fi
timeouts=$(grep -c '"status":"Timeout"' "$OUT/reference/rows.jsonl")
if [ "$timeouts" -lt 1 ]; then
  echo "service_smoke: no Timeout row in the reference stream" >&2
  exit 1
fi

# 2. Interrupted run: kill -9 once the first row is on disk. (If the run
# wins the race and finishes first, the resume below degrades to a no-op
# re-run, which must still reproduce the stream byte-for-byte.)
"$BIN" "${ARGS[@]}" --out "$OUT/resumed" >/dev/null 2>&1 &
pid=$!
for _ in $(seq 1 600); do
  [ -s "$OUT/resumed/rows.jsonl" ] && break
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# 3. Resume and gate on byte identity with the uninterrupted reference.
rc=0
"$BIN" "${ARGS[@]}" --out "$OUT/resumed" | tee "$OUT/resumed.txt" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "service_smoke: expected exit 2 on the resumed run, got $rc" >&2
  exit 1
fi
if ! cmp "$OUT/reference/rows.jsonl" "$OUT/resumed/rows.jsonl"; then
  echo "service_smoke: resumed stream differs from the reference" >&2
  exit 1
fi

# 4. All-kinds run: serve the quick pair with every job kind enabled. Runs
# without the propagation cap (all jobs finish), so exit 0 is the contract.
mkdir -p "$OUT/kinds-circuits"
cp "$OUT/circuits/demo_a.bench" "$OUT/circuits/demo_b.bench" "$OUT/kinds-circuits/"
"$BIN" --dir "$OUT/kinds-circuits" --out "$OUT/kinds" --scheme xor --key-len 4 \
       --seed 7 --attacks sat,muxlink,evolve --evolve-population 3 \
       --evolve-generations 1 | tee "$OUT/kinds.txt"
rows=$(wc -l < "$OUT/kinds/rows.jsonl")
if [ "$rows" -ne 6 ]; then
  echo "service_smoke: expected 6 all-kinds rows (2 circuits x 3 kinds), got $rows" >&2
  exit 1
fi
for id in demo_a demo_a.muxlink demo_a.evolve demo_b demo_b.muxlink demo_b.evolve; do
  if ! grep -q "\"job_id\":\"$id\"" "$OUT/kinds/rows.jsonl"; then
    echo "service_smoke: missing row for job $id" >&2
    exit 1
  fi
done

echo "service_smoke: OK — $timeouts induced timeout(s), resumed stream byte-identical, $rows all-kinds rows"
