#!/usr/bin/env python3
"""Sanity-check the observability manifests the experiment drivers emit.

Usage: check_obs_manifest.py <obs-dir> [<obs-dir> ...]

Each directory is scanned for `*-manifest.json` (written by
`autolock_bench::ObsRun`, schema `autolock_obs::manifest::RunManifest`).
For every manifest the script checks:

* every REQUIRED_KEY is present (a dropped field is a silent break of the
  downstream tooling this gate exists to protect),
* `schema_version` is a version this script knows,
* the row lists (`top_spans`, `counters`, `gauges`) are lists of objects
  with their own required keys,
* basic value sanity: non-negative wall clock, non-empty experiment id
  and fingerprint, and at least one top-level span (the driver's root),
* per-experiment counter floors (EXPERIMENT_COUNTER_FLOORS): E14 must
  report fitness-cache hits *and* misses and at least one island
  migration, and E15 must report at least one AIGER ingest plus one
  register-cut and one unrolled sequential resolution — a zero there
  means the island/cache or ingestion wiring rotted even if the run
  "succeeded".

A directory containing no manifests FAILS: the drivers are expected to
emit one per run, so an empty directory means the wiring rotted.

When `$GITHUB_STEP_SUMMARY` is set, a top-level span timing table (one row
per manifest) is appended to it.

Exit code 1 on any FAIL.
"""

import glob
import json
import os
import sys

KNOWN_SCHEMA_VERSIONS = {1}

REQUIRED_KEYS = [
    "schema_version",
    "experiment",
    "config_fingerprint",
    "suite_tier",
    "scale",
    "seed",
    "threads",
    "git_describe",
    "wall_clock_ms",
    "top_spans",
    "counters",
    "gauges",
    "events_recorded",
    "events_dropped",
]
ROW_KEYS = {
    "top_spans": ["path", "count", "total_ms"],
    "counters": ["name", "value"],
    "gauges": ["name", "value"],
}
# Per-experiment minimum counter values: {experiment: {counter: floor}}.
EXPERIMENT_COUNTER_FLOORS = {
    "e14": {
        "autolock.fitness_cache.hits": 1,
        "autolock.fitness_cache.misses": 1,
        "evo.migrations": 1,
    },
    "e15": {
        "service.ingest.aiger": 1,
        "service.ingest.cut": 1,
        "service.ingest.unrolled": 1,
    },
}


def check_manifest(path):
    """Returns (errors, manifest_or_None)."""
    errors = []
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable: {e}"], None

    for key in REQUIRED_KEYS:
        if key not in manifest:
            errors.append(f"missing required key {key!r}")
    if errors:
        return errors, manifest

    if manifest["schema_version"] not in KNOWN_SCHEMA_VERSIONS:
        errors.append(
            f"unknown schema_version {manifest['schema_version']!r} "
            f"(known: {sorted(KNOWN_SCHEMA_VERSIONS)})"
        )
    for list_key, row_keys in ROW_KEYS.items():
        rows = manifest[list_key]
        if not isinstance(rows, list):
            errors.append(f"{list_key} is not a list")
            continue
        for i, row in enumerate(rows):
            for key in row_keys:
                if not isinstance(row, dict) or key not in row:
                    errors.append(f"{list_key}[{i}] missing {key!r}")
                    break
    if not manifest["experiment"]:
        errors.append("empty experiment id")
    if not manifest["config_fingerprint"]:
        errors.append("empty config_fingerprint")
    if manifest["wall_clock_ms"] < 0:
        errors.append(f"negative wall_clock_ms: {manifest['wall_clock_ms']}")
    if not manifest["top_spans"]:
        errors.append("no top-level span (the driver's root span is missing)")
    floors = EXPERIMENT_COUNTER_FLOORS.get(manifest["experiment"], {})
    if floors:
        counters = {
            row["name"]: row["value"]
            for row in manifest["counters"]
            if isinstance(row, dict)
        }
        for name, floor in floors.items():
            value = counters.get(name, 0)
            if value < floor:
                errors.append(f"counter {name!r} is {value}, expected >= {floor}")
    return errors, manifest


def write_step_summary(rows):
    """Appends the per-run top-level span timing table to the summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not rows:
        return
    lines = [
        "### Experiment observability (top-level spans)",
        "",
        "| experiment | span | total ms | wall ms | events | peak RSS MB |",
        "|---|---|---|---|---|---|",
    ]
    for manifest in rows:
        peak = manifest.get("peak_rss_mb")
        peak = f"{peak:.0f}" if isinstance(peak, (int, float)) else "n/a"
        for span in manifest["top_spans"]:
            lines.append(
                f"| `{manifest['experiment']}` | `{span['path']}` "
                f"| {span['total_ms']:.0f} | {manifest['wall_clock_ms']:.0f} "
                f"| {manifest['events_recorded']} | {peak} |"
            )
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    dirs = sys.argv[1:]
    if not dirs:
        print(__doc__)
        return 2
    failed = False
    manifests = []
    for d in dirs:
        paths = sorted(glob.glob(os.path.join(d, "*-manifest.json")))
        if not paths:
            print(f"{d}: no *-manifest.json found  <-- FAIL")
            failed = True
            continue
        for path in paths:
            errors, manifest = check_manifest(path)
            if errors:
                failed = True
                for e in errors:
                    print(f"{path}: {e}  <-- FAIL")
            else:
                print(
                    f"{path}: ok ({manifest['experiment']}, "
                    f"{len(manifest['top_spans'])} top span(s), "
                    f"{manifest['events_recorded']} events)"
                )
                manifests.append(manifest)
    write_step_summary(manifests)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
