#!/usr/bin/env python3
"""Gate the kernel-bench perf trajectory against the committed baseline.

Usage: check_bench_regression.py <committed_baseline.json> <fresh.json>

Both files are `BENCH_kernels.json` trajectories (see crates/bench/README.md):
one entry per (op, dims, threads) with `speedup_vs_baseline` — blocked kernel
vs naive loop, or parallel ensemble vs serial pool. Speedups are *relative*
measurements taken on one machine, so they transfer across runners far better
than raw ns/iter; the committed file is the floor the fresh run is diffed
against.

Rules (the 1.5x floor logic, applied both absolutely and to the diff):

* HARD absolute floor: `matmul_nt` at 128x128x128 must hold >= 1.5x naive
  (the paper target; it measures >= 2.5x even on a noisy single-core box,
  so falling below 1.5x is a real regression).
* SOFT absolute floor: `matmul` / `matmul_tn` at 128x128x128 warn below
  1.05x (they sit in shared-runner timing noise of their quick-mode medians).
* RELATIVE floor: every entry present in both files FAILS if its fresh
  speedup drops below `committed / 1.5` *and* below the 1.5x absolute bar —
  an entry still >= 1.5x its baseline kernel is fast, not regressed, even if
  the committed number was higher. Entries whose committed speedup is < 1.0
  (e.g. parallel rows measured on a single-core box) only warn: there is no
  meaningful floor to derive from them.
* COVERAGE: a committed entry missing from the fresh run FAILS — a renamed
  or dropped kernel silently leaving the gate is exactly the rot this gate
  exists to prevent. Refresh the committed baseline deliberately instead.

Exit code 1 on any FAIL.
"""

import json
import sys

HARD_ABS = {("matmul_nt", "128x128x128", 1): 1.5}
SOFT_ABS = {
    ("matmul", "128x128x128", 1): 1.05,
    ("matmul_tn", "128x128x128", 1): 1.05,
}
RELATIVE_SLACK = 1.5
ABS_OK_BAR = 1.5


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        (e["op"], e["dims"], e["threads"]): e["speedup_vs_baseline"]
        for e in data["entries"]
    }


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    baseline = load(sys.argv[1])
    fresh = load(sys.argv[2])
    failed = False

    for key, floor in HARD_ABS.items():
        if key not in fresh:
            print(f"{key}: MISSING from fresh run  <-- FAIL")
            failed = True
        elif fresh[key] < floor:
            print(f"{key}: {fresh[key]:.2f}x < hard floor {floor}x  <-- FAIL")
            failed = True
        else:
            print(f"{key}: {fresh[key]:.2f}x >= hard floor {floor}x  ok")

    for key, floor in SOFT_ABS.items():
        if key in fresh and fresh[key] < floor:
            print(f"{key}: {fresh[key]:.2f}x < soft floor {floor}x  (warn only)")

    missing = sorted(set(baseline) - set(fresh))
    for key in missing:
        # A committed entry the bench no longer emits means that kernel is
        # no longer being diffed; refresh the baseline deliberately instead.
        print(f"{key}: in committed baseline but MISSING from fresh run  <-- FAIL")
        failed = True

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no overlapping entries between baseline and fresh run  <-- FAIL")
        failed = True
    for key in shared:
        base, now = baseline[key], fresh[key]
        if base < 1.0:
            if now < base / RELATIVE_SLACK:
                print(
                    f"{key}: {now:.2f}x vs committed {base:.2f}x "
                    f"(committed < 1.0x: warn only)"
                )
            continue
        floor = base / RELATIVE_SLACK
        if now < floor and now < ABS_OK_BAR:
            print(
                f"{key}: {now:.2f}x < {floor:.2f}x "
                f"(committed {base:.2f}x / {RELATIVE_SLACK})  <-- FAIL"
            )
            failed = True
        elif now < floor:
            print(
                f"{key}: {now:.2f}x below committed-derived floor {floor:.2f}x "
                f"but still >= {ABS_OK_BAR}x absolute  (warn only)"
            )
        else:
            print(f"{key}: {now:.2f}x (committed {base:.2f}x)  ok")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
