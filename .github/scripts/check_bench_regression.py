#!/usr/bin/env python3
"""Gate kernel-bench perf trajectories against their committed baselines.

Usage: check_bench_regression.py <committed.json> <fresh.json> [<committed2.json> <fresh2.json> ...]

Each argument pair is one trajectory file (see crates/bench/README.md):
`BENCH_kernels.json` (matmul + ensemble) and `BENCH_gnn_kernels.json` (DGCNN
train/score fan-outs + streamed-vs-materialized) are both gated. Every file
holds one entry per (op, dims, threads) with `speedup_vs_baseline` — blocked
kernel vs naive loop, parallel pool vs serial, or streamed training vs the
materialized path. Speedups are *relative* measurements taken on one
machine, so they transfer across runners far better than raw ns/iter; the
committed file is the floor the fresh run is diffed against.

Rules (the 1.5x floor logic, applied both absolutely and to the diff):

* HARD absolute floor: `matmul_nt` at 128x128x128 must hold >= 1.5x naive
  (the paper target; it measures >= 2.5x even on a noisy single-core box,
  so falling below 1.5x is a real regression), and
  `gnn_train_epoch_streamed` must hold >= 0.5x the materialized training
  path (streaming trades peak memory for at most a modest constant factor;
  it measures ~0.95x, so dropping below half speed means the streamed
  pipeline itself regressed). Both are same-machine ratios, so they
  transfer across runners. Hard-floor keys are only required in the pair
  whose baseline contains them.
* SOFT absolute floor: `matmul` / `matmul_tn` at 128x128x128 warn below
  1.05x (they sit in shared-runner timing noise of their quick-mode medians).
* RELATIVE floor: every entry present in both files FAILS if its fresh
  speedup drops below `committed / 1.5` *and* below the 1.5x absolute bar —
  an entry still >= 1.5x its baseline kernel is fast, not regressed, even if
  the committed number was higher. Entries whose committed speedup is < 1.0
  (e.g. parallel rows measured on a single-core box) only warn: there is no
  meaningful floor to derive from them.
* COVERAGE: a committed entry missing from the fresh run FAILS — a renamed
  or dropped kernel silently leaving the gate is exactly the rot this gate
  exists to prevent. Refresh the committed baseline deliberately instead.

When `$GITHUB_STEP_SUMMARY` is set, a one-line-per-file markdown summary
table is appended to it.

Exit code 1 on any FAIL.
"""

import json
import os
import sys

HARD_ABS = {
    ("matmul_nt", "128x128x128", 1): 1.5,
    ("gnn_train_epoch_streamed", "16x40n", 1): 0.5,
}
SOFT_ABS = {
    ("matmul", "128x128x128", 1): 1.05,
    ("matmul_tn", "128x128x128", 1): 1.05,
}
RELATIVE_SLACK = 1.5
ABS_OK_BAR = 1.5


def load(path):
    with open(path) as f:
        data = json.load(f)
    return {
        (e["op"], e["dims"], e["threads"]): e["speedup_vs_baseline"]
        for e in data["entries"]
    }


def check_pair(baseline_path, fresh_path):
    """Gates one (committed, fresh) trajectory pair.

    Returns (failed, counts) where counts is {"ok": n, "warn": n, "fail": n}.
    """
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    failed = False
    counts = {"ok": 0, "warn": 0, "fail": 0}
    print(f"--- gating {fresh_path} against {baseline_path} ---")

    for key, floor in HARD_ABS.items():
        if key not in baseline:
            continue  # this pair does not carry the hard-floor kernel
        if key not in fresh:
            print(f"{key}: MISSING from fresh run  <-- FAIL")
            failed = True
            counts["fail"] += 1
        elif fresh[key] < floor:
            print(f"{key}: {fresh[key]:.2f}x < hard floor {floor}x  <-- FAIL")
            failed = True
            counts["fail"] += 1
        else:
            print(f"{key}: {fresh[key]:.2f}x >= hard floor {floor}x  ok")
            counts["ok"] += 1

    # Soft floors print advisories only; the entry is counted once by the
    # shared relative loop below.
    for key, floor in SOFT_ABS.items():
        if key in fresh and fresh[key] < floor:
            print(f"{key}: {fresh[key]:.2f}x < soft floor {floor}x  (warn only)")

    # Hard-floor keys already failed above when missing — don't count the
    # same absence twice in the summary.
    missing = sorted(set(baseline) - set(fresh) - set(HARD_ABS))
    for key in missing:
        # A committed entry the bench no longer emits means that kernel is
        # no longer being diffed; refresh the baseline deliberately instead.
        print(f"{key}: in committed baseline but MISSING from fresh run  <-- FAIL")
        failed = True
        counts["fail"] += 1

    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        print("no overlapping entries between baseline and fresh run  <-- FAIL")
        failed = True
        counts["fail"] += 1
    for key in shared:
        if key in HARD_ABS:
            # Already gated (and counted once) by its absolute floor above.
            continue
        base, now = baseline[key], fresh[key]
        if base < 1.0:
            if now < base / RELATIVE_SLACK:
                print(
                    f"{key}: {now:.2f}x vs committed {base:.2f}x "
                    f"(committed < 1.0x: warn only)"
                )
                counts["warn"] += 1
            else:
                counts["ok"] += 1
            continue
        floor = base / RELATIVE_SLACK
        if now < floor and now < ABS_OK_BAR:
            print(
                f"{key}: {now:.2f}x < {floor:.2f}x "
                f"(committed {base:.2f}x / {RELATIVE_SLACK})  <-- FAIL"
            )
            failed = True
            counts["fail"] += 1
        elif now < floor:
            print(
                f"{key}: {now:.2f}x below committed-derived floor {floor:.2f}x "
                f"but still >= {ABS_OK_BAR}x absolute  (warn only)"
            )
            counts["warn"] += 1
        else:
            print(f"{key}: {now:.2f}x (committed {base:.2f}x)  ok")
            counts["ok"] += 1

    return failed, counts


def write_step_summary(rows):
    """Appends a one-line-per-file markdown table to $GITHUB_STEP_SUMMARY."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Kernel perf gate",
        "",
        "| trajectory | entries ok | warn | fail | verdict |",
        "|---|---|---|---|---|",
    ]
    for name, counts, failed in rows:
        verdict = ":x: regression" if failed else ":white_check_mark: green"
        lines.append(
            f"| `{name}` | {counts['ok']} | {counts['warn']} "
            f"| {counts['fail']} | {verdict} |"
        )
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")


def main():
    args = sys.argv[1:]
    if len(args) < 2 or len(args) % 2 != 0:
        print(__doc__)
        return 2
    any_failed = False
    summary_rows = []
    for baseline_path, fresh_path in zip(args[::2], args[1::2]):
        failed, counts = check_pair(baseline_path, fresh_path)
        any_failed = any_failed or failed
        summary_rows.append((os.path.basename(fresh_path), counts, failed))
    write_step_summary(summary_rows)
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
