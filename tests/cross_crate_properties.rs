//! Property-based integration tests spanning the locking, attack and netlist
//! crates: the core logic-locking invariants must hold for arbitrary
//! generator-produced circuits and arbitrary key lengths.

use autolock_suite::circuits::{CircuitGenerator, GeneratorConfig};
use autolock_suite::locking::{DMuxLocking, Key, LockingScheme, XorLocking};
use autolock_suite::netlist::ingest::{parse_auto, IngestOptions};
use autolock_suite::netlist::{equiv, stats, write_bench};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generated_circuit(gates: usize, seed: u64) -> autolock_suite::netlist::Netlist {
    CircuitGenerator::new(GeneratorConfig::sized("prop", 8, 4, gates.max(20)).with_seed(seed))
        .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1: locked netlist + correct key ≡ original, for both schemes,
    /// on arbitrary circuits and key lengths.
    #[test]
    fn correct_key_preserves_functionality(
        gates in 30usize..120,
        seed in 0u64..1000,
        key_len in 1usize..8,
        dmux in proptest::bool::ANY,
    ) {
        let original = generated_circuit(gates, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let locked = if dmux {
            DMuxLocking::default().lock(&original, key_len, &mut rng)
        } else {
            XorLocking::default().lock(&original, key_len, &mut rng)
        };
        let locked = match locked {
            Ok(l) => l,
            Err(_) => return Ok(()), // circuit too small for this key length
        };
        prop_assert_eq!(locked.key_len(), key_len);
        prop_assert!(locked.verify_functional(&original, 4, &mut rng).unwrap());
    }

    /// Invariant 2: for every single-bit key flip of a D-MUX locking, the
    /// randomized corruption estimate and exhaustive equivalence checking must
    /// agree — corruption is observed exactly when the mis-keyed circuit is
    /// not functionally equivalent to the original. (A flip *may* leave the
    /// function unchanged when the decoy wire happens to compute the same
    /// value; the invariant is that our two measurement paths never disagree.)
    #[test]
    fn dmux_corruption_and_equivalence_agree_per_key_bit(
        gates in 40usize..100,
        seed in 0u64..500,
        key_len in 1usize..5,
    ) {
        let original = generated_circuit(gates, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x1234);
        let Ok(locked) = DMuxLocking::default().lock(&original, key_len, &mut rng) else {
            return Ok(());
        };
        for bit in 0..key_len {
            let mut wrong = locked.key().clone();
            wrong.flip(bit);
            let corruption = locked
                .corruption_under_key(&original, &wrong, 64, &mut rng)
                .unwrap();
            let equivalent = equiv::exhaustive_equivalent(
                &original,
                &[],
                locked.netlist(),
                wrong.bits(),
            )
            .unwrap();
            if equivalent {
                prop_assert_eq!(corruption, 0.0, "equivalent circuit reported corruption");
            } else {
                // 64 rounds x 64 random patterns over 8 inputs visit every
                // input assignment with overwhelming probability, so a
                // genuinely different circuit must show some corruption.
                prop_assert!(
                    corruption > 0.0,
                    "non-equivalent circuit showed no corruption for key bit {}", bit
                );
            }
        }
    }

    /// Invariant 3: locking is purely additive — every gate of the original
    /// netlist is still present (same name, same kind) in the locked netlist,
    /// and the locked netlist writes/parses as valid `.bench`.
    #[test]
    fn locking_is_additive_and_serializable(
        gates in 30usize..100,
        seed in 0u64..500,
        key_len in 1usize..6,
    ) {
        let original = generated_circuit(gates, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x77);
        let Ok(locked) = DMuxLocking::default().lock(&original, key_len, &mut rng) else {
            return Ok(());
        };
        for (_, gate) in original.iter() {
            let found = locked.netlist().find(&gate.name);
            prop_assert!(found.is_some(), "gate {} disappeared", gate.name);
            prop_assert_eq!(locked.netlist().gate(found.unwrap()).kind, gate.kind);
        }
        let s = stats::netlist_stats(locked.netlist()).unwrap();
        prop_assert_eq!(s.gates, original.num_logic_gates() + 2 * key_len);
        prop_assert_eq!(s.key_inputs, key_len);

        let text = write_bench(locked.netlist());
        let back = parse_auto("rt", &text, &IngestOptions::default())
            .unwrap()
            .netlist;
        prop_assert_eq!(back.num_logic_gates(), locked.netlist().num_logic_gates());
        prop_assert_eq!(back.num_key_inputs(), key_len);
    }

    /// Invariant 4: a wrong key drawn at random corrupts the outputs of an
    /// XOR-locked netlist whenever its Hamming distance from the correct key
    /// is non-zero, and never when it is zero.
    #[test]
    fn xor_corruption_is_zero_iff_key_correct(
        gates in 30usize..80,
        seed in 0u64..300,
        key_len in 2usize..6,
        flips in 0usize..3,
    ) {
        let original = generated_circuit(gates, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x55);
        let Ok(locked) = XorLocking::default().lock(&original, key_len, &mut rng) else {
            return Ok(());
        };
        let mut candidate: Key = locked.key().clone();
        for i in 0..flips.min(key_len) {
            candidate.flip(i);
        }
        let corruption = locked
            .corruption_under_key(&original, &candidate, 8, &mut rng)
            .unwrap();
        if flips == 0 {
            prop_assert_eq!(corruption, 0.0);
        } else {
            // XOR key gates invert a wire when mis-keyed: at least one output
            // pattern must differ (the wire feeds a primary output cone).
            prop_assert!(corruption >= 0.0);
        }
        // Observed corruption implies the exhaustive checker also sees a
        // functional difference (the converse may not hold for few samples).
        if corruption > 0.0 {
            let equal = equiv::exhaustive_equivalent(
                &original, &[], locked.netlist(), candidate.bits(),
            ).unwrap();
            prop_assert!(!equal, "corruption observed but circuits are equivalent");
        }
    }
}
