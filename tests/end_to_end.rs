//! Cross-crate integration tests: the full lock → verify → attack → evolve
//! pipeline on small circuits.

use autolock_suite::attacks::{
    KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, RandomGuessAttack, SatAttack, SatAttackConfig,
    XorStructuralAttack,
};
use autolock_suite::autolock::{AutoLock, AutoLockConfig};
use autolock_suite::circuits::{c17, suite_circuit, synth_circuit};
use autolock_suite::locking::{DMuxLocking, LockingScheme, XorLocking};
use autolock_suite::netlist::ingest::{parse_auto, IngestOptions};
use autolock_suite::netlist::{equiv, write_bench};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn locked_netlists_survive_bench_roundtrip_and_stay_equivalent() {
    let original = synth_circuit("e2e_rt", 10, 4, 120, 91);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let locked = DMuxLocking::default().lock(&original, 8, &mut rng).unwrap();

    let text = write_bench(locked.netlist());
    let reparsed = parse_auto("roundtrip", &text, &IngestOptions::default())
        .unwrap()
        .netlist;
    assert_eq!(reparsed.num_key_inputs(), 8);
    let equivalent =
        equiv::random_equivalent(&original, &[], &reparsed, locked.key().bits(), 8, &mut rng)
            .unwrap();
    assert!(
        equivalent,
        "re-parsed locked netlist must still unlock correctly"
    );
}

#[test]
fn muxlink_beats_baselines_on_dmux_and_structural_attack_breaks_xor() {
    let original = suite_circuit("s160").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    // 12 key bits on s160 keeps the locking density in the regime the paper
    // evaluates; 16+ bits saturate a circuit this small with MUXes, which
    // degrades every attack (see `circuits_for` in autolock_bench).
    let dmux = DMuxLocking::default()
        .lock(&original, 12, &mut rng)
        .unwrap();
    let xor = XorLocking::default().lock(&original, 16, &mut rng).unwrap();

    // Mean of three retrains: a single 12-bit-key attack on a circuit this
    // small swings by ±0.1, so one seed is not a fair strength measure.
    let mean_acc = |config: MuxLinkConfig| {
        let attack = MuxLinkAttack::new(config);
        (3u64..6)
            .map(|seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                attack.attack(&dmux, &mut rng).key_accuracy
            })
            .sum::<f64>()
            / 3.0
    };
    let muxlink = mean_acc(MuxLinkConfig::fast());
    let locality = mean_acc(MuxLinkConfig::locality_only());
    let mut attack_rng = ChaCha8Rng::seed_from_u64(3);
    let random = RandomGuessAttack
        .attack(&dmux, &mut attack_rng)
        .key_accuracy;

    // The ordering the paper's narrative depends on: link prediction breaks
    // D-MUX, locality-only learning and random guessing do not.
    assert!(muxlink > 0.7, "muxlink accuracy {muxlink}");
    assert!(
        muxlink > locality,
        "muxlink {muxlink} vs locality {locality}"
    );
    assert!(
        (0.2..=0.8).contains(&random),
        "random guessing should hover around 0.5, got {random}"
    );

    let mut attack_rng = ChaCha8Rng::seed_from_u64(4);
    let xor_structural = XorStructuralAttack
        .attack(&xor, &mut attack_rng)
        .key_accuracy;
    assert_eq!(
        xor_structural, 1.0,
        "naive XOR locking leaks its key structurally"
    );
}

#[test]
fn sat_attack_recovers_functional_keys_across_schemes() {
    let original = c17();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for locked in [
        XorLocking::default().lock(&original, 3, &mut rng).unwrap(),
        DMuxLocking::default().lock(&original, 3, &mut rng).unwrap(),
    ] {
        let outcome = SatAttack::new(SatAttackConfig::default()).attack(&locked, &original);
        assert!(outcome.success, "SAT attack should finish on c17");
        let ok = equiv::exhaustive_equivalent(
            &original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
        )
        .unwrap();
        assert!(ok, "recovered key must unlock {}", locked.scheme());
    }
}

#[test]
fn autolock_end_to_end_improves_or_matches_dmux_and_stays_functional() {
    let original = suite_circuit("s160").unwrap();
    let config = AutoLockConfig {
        key_len: 12,
        population_size: 6,
        generations: 4,
        attack_repeats: 1,
        parallel: false,
        seed: 77,
        ..Default::default()
    };
    let result = AutoLock::new(config).run(&original).unwrap();

    // Functional correctness of the evolved locking.
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    assert!(result
        .locked
        .verify_functional(&original, 8, &mut rng)
        .unwrap());
    assert_eq!(result.locked.key_len(), 12);
    assert_eq!(result.locked.scheme(), "autolock");

    // The GA never regresses below its own initial population mean.
    assert!(result.final_attack_accuracy <= result.baseline_attack_accuracy + 1e-9);
    // History is complete and starts at generation 0.
    assert_eq!(result.history.first().unwrap().generation, 0);
    assert!(result.history.len() >= 2);
    // Key provenance decodes back to exactly the evolved genotype length.
    assert_eq!(result.best_genotype.len(), 12);
}

#[test]
fn evolved_locking_can_still_be_attacked_by_sat_with_oracle() {
    // AutoLock targets the ML attack surface; an oracle-armed SAT attacker
    // still succeeds (the paper's research plan motivates multi-objective
    // fitness for exactly this reason).
    let original = suite_circuit("s160").unwrap();
    let config = AutoLockConfig {
        key_len: 6,
        population_size: 4,
        generations: 2,
        attack_repeats: 1,
        parallel: false,
        seed: 13,
        ..Default::default()
    };
    let result = AutoLock::new(config).run(&original).unwrap();
    let outcome = SatAttack::new(SatAttackConfig {
        max_iterations: 300,
        timeout_ms: 60_000,
        max_propagations_per_solve: None,
        ..SatAttackConfig::default()
    })
    .attack(&result.locked, &original);
    assert!(outcome.success);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let ok = equiv::random_equivalent(
        &original,
        &[],
        result.locked.netlist(),
        outcome.recovered_key.bits(),
        8,
        &mut rng,
    )
    .unwrap();
    assert!(ok);
}
