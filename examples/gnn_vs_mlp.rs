//! Head-to-head: the seed's enclosing-subgraph MLP backend vs the faithful
//! DGCNN backend of the MuxLink attack, on the same D-MUX-locked circuit.
//!
//! Run with `cargo run --release --example gnn_vs_mlp`.

use autolock_suite::attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_suite::circuits::synth_circuit;
use autolock_suite::locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let original = synth_circuit("demo", 24, 10, 600, 42);
    let key_len = 16;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let locked = DMuxLocking::default()
        .lock(&original, key_len, &mut rng)
        .expect("lockable circuit");
    println!(
        "circuit: {} gates, {}-bit D-MUX key\n",
        original.num_logic_gates(),
        key_len
    );

    for config in [MuxLinkConfig::default(), MuxLinkConfig::gnn()] {
        let attack = MuxLinkAttack::new(config);
        let start = Instant::now();
        let mut total = 0.0;
        let runs = 3u64;
        for seed in 0..runs {
            let mut attack_rng = ChaCha8Rng::seed_from_u64(100 + seed);
            let outcome = attack.attack(&locked, &mut attack_rng);
            total += outcome.key_accuracy;
        }
        println!(
            "{:>12}: key accuracy {:.1}% (mean of {} runs, {:?} total)",
            attack.name(),
            100.0 * total / runs as f64,
            runs,
            start.elapsed()
        );
    }
    println!("\nThe DGCNN sees the raw enclosing subgraph instead of summary");
    println!("statistics, which is what the published MuxLink attack does.");
}
