//! Multi-objective locking design (research-plan item of the paper): evolve a
//! Pareto front trading MuxLink accuracy against area overhead with NSGA-II.
//!
//! Usage: `cargo run --release --example multi_objective -- [circuit] [key_len]`

use autolock_suite::attacks::MuxLinkConfig;
use autolock_suite::attacks::SatAttackConfig;
use autolock_suite::autolock::operators::{
    CrossoverKind, LocusCrossover, LocusMutation, MutationKind,
};
use autolock_suite::autolock::{random_genotype, MultiObjectiveLockingFitness, ObjectiveKind};
use autolock_suite::circuits::suite_circuit;
use autolock_suite::evo::{Nsga2, Nsga2Config};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = args.get(1).map(String::as_str).unwrap_or("s380");
    let key_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(24);
    let original = Arc::new(suite_circuit(circuit_name).ok_or("unknown circuit")?);
    println!(
        "NSGA-II on {} ({} gates), key length {}: minimize (MuxLink accuracy, area overhead)\n",
        circuit_name,
        original.num_logic_gates(),
        key_len
    );

    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let initial: Vec<_> = (0..12)
        .map(|_| random_genotype(&original, key_len, &mut rng))
        .collect::<Result<_, _>>()?;
    let fitness = MultiObjectiveLockingFitness::new(
        original.clone(),
        MuxLinkConfig::fast(),
        SatAttackConfig {
            max_iterations: 100,
            timeout_ms: 10_000,
            max_propagations_per_solve: None,
            ..SatAttackConfig::default()
        },
        vec![ObjectiveKind::MuxLinkAccuracy, ObjectiveKind::AreaOverhead],
        23,
    );
    let crossover = LocusCrossover::new(original.clone(), key_len, CrossoverKind::OnePoint);
    let mutation = LocusMutation::new(original.clone(), key_len, MutationKind::Composite);
    let result = Nsga2::new(Nsga2Config {
        generations: 12,
        ..Default::default()
    })
    .run(initial, &fitness, &crossover, &mutation, &mut rng);

    println!("Pareto front ({} points):", result.front.len());
    println!(
        "{:<8} {:>18} {:>16}",
        "point", "MuxLink accuracy", "area overhead"
    );
    let mut points = result.front.clone();
    points.sort_by(|a, b| a.objectives[0].partial_cmp(&b.objectives[0]).unwrap());
    for (i, p) in points.iter().enumerate() {
        println!(
            "{:<8} {:>17.1}% {:>15.1}%",
            i,
            p.objectives[0] * 100.0,
            p.objectives[1] * 100.0
        );
    }
    println!(
        "\n({} objective evaluations; front sizes per generation: {:?})",
        result.evaluations, result.front_size_history
    );
    Ok(())
}
