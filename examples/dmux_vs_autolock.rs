//! The paper's headline scenario: how much does evolutionary refinement lower
//! MuxLink's key-prediction accuracy compared to plain D-MUX?
//!
//! Usage:
//! `cargo run --release --example dmux_vs_autolock -- [circuit] [key_len] [generations]`
//! e.g. `cargo run --release --example dmux_vs_autolock -- s880 32 60`

use autolock_suite::attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_suite::autolock::{AutoLock, AutoLockConfig};
use autolock_suite::circuits::{suite_circuit, suite_entries, SuiteScale};
use autolock_suite::locking::{DMuxLocking, LockedNetlist, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Average MuxLink accuracy over three freshly retrained attacker instances.
fn retrained_accuracy(locked: &LockedNetlist) -> f64 {
    let mut total = 0.0;
    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD15C0 + seed);
        total += MuxLinkAttack::new(MuxLinkConfig::default())
            .attack(locked, &mut rng)
            .key_accuracy;
    }
    total / 3.0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = args.get(1).map(String::as_str).unwrap_or("s880");
    let key_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let generations: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(40);

    let Some(original) = suite_circuit(circuit_name) else {
        eprintln!("unknown circuit `{circuit_name}`; available:");
        for entry in suite_entries(SuiteScale::Full) {
            eprintln!("  {} ({} gates)", entry.name, entry.gates);
        }
        std::process::exit(1);
    };
    println!(
        "circuit {} | {} gates | key length {} | {} generations",
        circuit_name,
        original.num_logic_gates(),
        key_len,
        generations
    );

    // Baseline: plain D-MUX.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let dmux = DMuxLocking::default().lock(&original, key_len, &mut rng)?;
    let dmux_acc = retrained_accuracy(&dmux);
    println!("MuxLink accuracy on D-MUX      : {:.1}%", dmux_acc * 100.0);

    // AutoLock.
    let config = AutoLockConfig {
        key_len,
        population_size: 20,
        generations,
        attack_repeats: 4,
        seed: 7,
        ..Default::default()
    };
    let result = AutoLock::new(config).run(&original)?;
    let auto_acc = retrained_accuracy(&result.locked);
    println!(
        "MuxLink accuracy on AutoLock   : {:.1}% (in-loop attacker: {:.1}%)",
        auto_acc * 100.0,
        result.final_attack_accuracy * 100.0
    );
    println!(
        "accuracy drop                  : {:.1} percentage points (paper reports ~25 pp)",
        (dmux_acc - auto_acc) * 100.0
    );
    println!("\nconvergence (best attack accuracy per generation):");
    for record in result
        .history
        .iter()
        .step_by(5.max(result.history.len() / 12))
    {
        println!(
            "  gen {:>3}: best {:.1}%  mean {:.1}%",
            record.generation,
            record.best_attack_accuracy * 100.0,
            record.mean_attack_accuracy * 100.0
        );
    }
    Ok(())
}
