//! Oracle-guided SAT attack demo: how many distinguishing input patterns does
//! the classic SAT attack need against XOR locking, D-MUX and an
//! AutoLock-evolved locking?
//!
//! Usage: `cargo run --release --example sat_resilience -- [circuit] [key_len]`

use autolock_suite::attacks::{SatAttack, SatAttackConfig};
use autolock_suite::autolock::{AutoLock, AutoLockConfig};
use autolock_suite::circuits::suite_circuit;
use autolock_suite::locking::{DMuxLocking, LockedNetlist, LockingScheme, XorLocking};
use autolock_suite::netlist::{equiv, Netlist};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn report(label: &str, original: &Netlist, locked: &LockedNetlist) {
    let attack = SatAttack::new(SatAttackConfig {
        max_iterations: 1000,
        timeout_ms: 60_000,
        max_propagations_per_solve: None,
        ..SatAttackConfig::default()
    });
    let outcome = attack.attack(locked, original);
    let functional = if outcome.success {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        equiv::random_equivalent(
            original,
            &[],
            locked.netlist(),
            outcome.recovered_key.bits(),
            8,
            &mut rng,
        )
        .unwrap_or(false)
    } else {
        false
    };
    println!(
        "{label:<10} | success: {:<5} | DIPs: {:>4} | runtime: {:>6} ms | recovered key functionally correct: {} | exact key match: {}",
        outcome.success, outcome.iterations, outcome.runtime_ms, functional, outcome.exact_key_match
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = args.get(1).map(String::as_str).unwrap_or("s160");
    let key_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let original = suite_circuit(circuit_name).ok_or("unknown circuit")?;
    println!(
        "SAT attack on {} ({} gates), key length {}\n",
        circuit_name,
        original.num_logic_gates(),
        key_len
    );

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let xor = XorLocking::default().lock(&original, key_len, &mut rng)?;
    report("xor-rll", &original, &xor);

    let dmux = DMuxLocking::default().lock(&original, key_len, &mut rng)?;
    report("d-mux", &original, &dmux);

    let autolock = AutoLock::new(AutoLockConfig {
        key_len,
        population_size: 8,
        generations: 8,
        seed: 11,
        ..Default::default()
    })
    .run(&original)?;
    report("autolock", &original, &autolock.locked);

    println!(
        "\nNote: the SAT attack defeats all purely combinational MUX/XOR locking given an oracle;\n\
         the point of this table is the relative query effort, and that AutoLock (which targets the\n\
         ML attack surface) does not accidentally make the SAT attack easier."
    );
    Ok(())
}
