//! Quickstart: lock a circuit, attack it, then let AutoLock evolve a harder
//! locking.
//!
//! Run with `cargo run --release --example quickstart`.

use autolock_suite::attacks::{KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig};
use autolock_suite::autolock::{AutoLock, AutoLockConfig};
use autolock_suite::circuits::suite_circuit;
use autolock_suite::locking::{DMuxLocking, LockingScheme};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Take a benchmark circuit (a synthetic stand-in for ISCAS-85 c880).
    let original = suite_circuit("s380").expect("known suite member");
    println!(
        "original design `{}`: {} inputs, {} outputs, {} gates",
        original.name(),
        original.num_inputs(),
        original.num_outputs(),
        original.num_logic_gates()
    );

    // 2. Lock it with plain D-MUX (32 key bits) and check functionality.
    let key_len = 32;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let dmux = DMuxLocking::default().lock(&original, key_len, &mut rng)?;
    assert!(dmux.verify_functional(&original, 8, &mut rng)?);
    println!(
        "locked with D-MUX: key = {}, {} extra gates",
        dmux.key(),
        dmux.netlist().num_logic_gates() - original.num_logic_gates()
    );

    // 3. Attack it with the MuxLink-style link-prediction attack.
    let attack = MuxLinkAttack::new(MuxLinkConfig::default());
    let outcome = attack.attack(&dmux, &mut rng);
    println!(
        "MuxLink on D-MUX: {:.1}% of key bits recovered",
        outcome.key_accuracy * 100.0
    );

    // 4. Let AutoLock evolve a locking that resists the same attack.
    let config = AutoLockConfig {
        key_len,
        population_size: 12,
        generations: 15,
        attack_repeats: 2,
        seed: 42,
        ..Default::default()
    };
    let result = AutoLock::new(config).run(&original)?;
    assert!(result.locked.verify_functional(&original, 8, &mut rng)?);
    let evolved_outcome = attack.attack(&result.locked, &mut rng);
    println!(
        "MuxLink on AutoLock: {:.1}% (was {:.1}% on D-MUX) after {} generations, {} fitness evaluations",
        evolved_outcome.key_accuracy * 100.0,
        outcome.key_accuracy * 100.0,
        result.history.len() - 1,
        result.fitness_evaluations
    );
    println!(
        "GA-internal convergence: {:.1}% -> {:.1}%",
        result.baseline_attack_accuracy * 100.0,
        result.final_attack_accuracy * 100.0
    );
    Ok(())
}
