//! Attack playground: lock a circuit with every scheme and run every
//! oracle-less attack against it, printing the full accuracy matrix.
//!
//! Optionally pass a path to an ISCAS-style `.bench` or ASCII AIGER `.aag`
//! file to use your own circuit (sequential sources are cut at the
//! registers):
//! `cargo run --release --example attack_playground -- my_circuit.bench 16`

use autolock_suite::attacks::{
    KeyRecoveryAttack, MuxLinkAttack, MuxLinkConfig, RandomGuessAttack, XorStructuralAttack,
};
use autolock_suite::circuits::suite_circuit;
use autolock_suite::locking::{DMuxLocking, LockedNetlist, LockingScheme, XorLocking};
use autolock_suite::netlist::ingest::{self, IngestOptions, SequentialHandling};
use autolock_suite::netlist::{write_bench, Netlist};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn load_circuit(arg: Option<&String>) -> Result<Netlist, Box<dyn std::error::Error>> {
    match arg {
        Some(path) if path.ends_with(".bench") || path.ends_with(".aag") => {
            let opts = IngestOptions {
                sequential: SequentialHandling::Cut,
                ..IngestOptions::default()
            };
            Ok(ingest::parse_path(path, &opts)?.netlist)
        }
        Some(name) => suite_circuit(name).ok_or_else(|| format!("unknown circuit `{name}`").into()),
        None => Ok(suite_circuit("s380").expect("default suite circuit")),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let original = load_circuit(args.get(1))?;
    let key_len: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    println!(
        "circuit `{}`: {} gates, {} inputs, {} outputs; key length {}\n",
        original.name(),
        original.num_logic_gates(),
        original.num_inputs(),
        original.num_outputs(),
        key_len
    );

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let schemes: Vec<(&str, LockedNetlist)> = vec![
        (
            "xor-rll",
            XorLocking::default().lock(&original, key_len, &mut rng)?,
        ),
        (
            "d-mux",
            DMuxLocking::default().lock(&original, key_len, &mut rng)?,
        ),
    ];
    let attacks: Vec<Box<dyn KeyRecoveryAttack>> = vec![
        Box::new(RandomGuessAttack),
        Box::new(XorStructuralAttack),
        Box::new(MuxLinkAttack::new(MuxLinkConfig::locality_only())),
        Box::new(MuxLinkAttack::new(MuxLinkConfig::default())),
    ];

    println!(
        "{:<16} {}",
        "attack \\ scheme",
        schemes
            .iter()
            .map(|(n, _)| format!("{n:>12}"))
            .collect::<String>()
    );
    for attack in &attacks {
        let mut line = format!("{:<16}", attack.name());
        for (_, locked) in &schemes {
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            let acc = attack.attack(locked, &mut rng).key_accuracy;
            line.push_str(&format!("{:>11.1}%", acc * 100.0));
        }
        println!("{line}");
    }

    // Show how to export a locked netlist for external tools.
    let (_, dmux) = &schemes[1];
    let out = std::env::temp_dir().join("autolock_playground_dmux.bench");
    std::fs::write(&out, write_bench(dmux.netlist()))?;
    println!(
        "\nD-MUX-locked netlist written to {} (correct key: {})",
        out.display(),
        dmux.key()
    );
    Ok(())
}
